"""One function per paper table/figure, plus the DESIGN.md ablations.

Each experiment returns a list of :class:`~repro.bench.report.Table`.
``quick=True`` shrinks sweeps for CI-speed runs; the full settings match
the paper's parameter grids (see DESIGN.md Section 4 for the index).

Two kinds of numbers appear side by side:

- **model** -- predictions of the roofline cost model standing in for
  the paper's hardware (Table IV, Fig. 9/10 shapes);
- **measured** -- wall-clock seconds of the numpy kernels on the host
  running this reproduction (honest, but a different instrument than
  the paper's C++/CUDA testbed; EXPERIMENTS.md discusses the gap).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.bench.paper_data import TABLE1_PAPER, TABLE2_PAPER_TOTALS, TABLE4_PAPER
from repro.bench.report import Table
from repro.bench.runner import time_callable
from repro.core.autotune import analytic_cost_ratio, analytic_mu
from repro.core.kernel import BiQGemm
from repro.core.lut import (
    build_tables_dp,
    build_tables_gemm,
    dp_flop_count,
    gemm_build_flop_count,
    reshape_input,
)
from repro.core.profiling import PhaseProfiler
from repro.core.tiling import TileConfig, lut_tile_bytes
from repro.gemm.packed import gemm_with_unpack, gemm_without_unpack
from repro.gemm.sgemm import sgemm
from repro.hw.costmodel import (
    estimate_biqgemm,
    estimate_gemm,
    estimate_packed_gemm,
    estimate_xnor,
)
from repro.hw.machine import MACHINES
from repro.hw.memory import table2_rows
from repro.quant.packing import pack_bits

__all__ = ["EXPERIMENTS", "run_experiment"]


def _random_binary(rng: np.random.Generator, shape) -> np.ndarray:
    return rng.choice(np.array([-1, 1], dtype=np.int8), size=shape)


# ----------------------------------------------------------------------
# Table I -- quantization quality
# ----------------------------------------------------------------------
def table1(quick: bool = False) -> list[Table]:
    """Quantization quality: paper BLEU table + this repo's two proxies."""
    from repro.train.experiment import accuracy_vs_bits, weight_sqnr_sweep

    paper = Table(
        "Table I (paper): Transformer En-De BLEU after quantization",
        ["ref", "scheme", "W bits", "A bits", "BLEU", "delta"],
        notes=["transcribed from the paper for comparison"],
    )
    for row in TABLE1_PAPER:
        paper.add_row(*row)

    sqnr = Table(
        "Table I proxy (a): weight reconstruction SQNR on Gaussian "
        "Transformer-shaped matrices",
        ["shape", "scheme", "bits", "SQNR (dB)"],
        notes=[
            "substitute for BLEU: higher SQNR ~ smaller accuracy drop",
            "expected shape: BCQ gains ~3-6 dB/bit; alternating >= greedy",
        ],
    )
    shapes = ((512, 512),) if quick else ((512, 512), (2048, 512))
    bits = (1, 2, 3, 4) if quick else (1, 2, 3, 4, 6, 8)
    for row in weight_sqnr_sweep(shapes=shapes, bits_list=bits):
        sqnr.add_row(row["shape"], row["scheme"], row["bits"], row["sqnr_db"])

    acc = Table(
        "Table I proxy (b): student-classifier accuracy after "
        "post-training weight quantization",
        ["scheme", "bits", "accuracy", "drop"],
        notes=[
            "substitute for BLEU on a numpy-trainable task (DESIGN.md S2)",
            "expected shape: >=3-bit BCQ near-lossless, 1-bit collapses",
        ],
    )
    baseline, rows = accuracy_vs_bits(
        bits_list=bits, epochs=10 if quick else 25
    )
    acc.notes.append(f"float32 baseline accuracy = {baseline:.3f}")
    for row in rows:
        acc.add_row(row.scheme, row.bits, row.accuracy, row.drop)
    return [paper, sqnr, acc]


# ----------------------------------------------------------------------
# Table II -- memory usage
# ----------------------------------------------------------------------
def table2(quick: bool = False) -> list[Table]:
    """Memory usage for a 512x512 layer at batch 18 (exact reproduction)."""
    del quick
    table = Table(
        "Table II: memory usage (512x512 weights, batch 18)",
        ["W bits", "A bits", "O bits", "W MB", "I MB", "O MB", "total MB",
         "paper MB"],
        notes=["MB = bytes / 1e6, following the paper's convention"],
    )
    for row in table2_rows():
        paper_total = TABLE2_PAPER_TOTALS[(row["w_bits"], row["a_bits"])]
        table.add_row(
            row["w_bits"],
            row["a_bits"],
            row["o_bits"],
            row["weights_mb"],
            row["inputs_mb"],
            row["outputs_mb"],
            row["total_mb"],
            paper_total,
        )
    return [table]


# ----------------------------------------------------------------------
# Table III -- machine configurations
# ----------------------------------------------------------------------
def table3(quick: bool = False) -> list[Table]:
    """The simulated machines (paper Table III parameters)."""
    del quick
    table = Table(
        "Table III: simulated machine configurations",
        ["machine", "units", "SIMD", "L1D/unit", "DRAM GB/s",
         "GFLOPS/unit", "GFLOPS total"],
        notes=["V100 FLOPS interpreted per-SM x 80 SMs (see machine.py)"],
    )
    for key, mc in MACHINES.items():
        table.add_row(
            f"{key} ({mc.name})",
            mc.units,
            mc.simd_lanes,
            f"{mc.l1d_bytes // 1024}KB",
            mc.bandwidth / 1e9,
            mc.flops_per_unit / 1e9,
            mc.flops_total / 1e9,
        )
    return [table]


# ----------------------------------------------------------------------
# Table IV -- GPU runtime comparison (cost model vs paper)
# ----------------------------------------------------------------------
def table4(quick: bool = False) -> list[Table]:
    """V100 runtimes: BiQGEMM vs kGpu vs cuBLAS vs XNOR (1-bit weights)."""
    v100 = MACHINES["v100"]
    table = Table(
        "Table IV: modelled V100 runtime (usec) vs paper, 1-bit weights",
        ["n=m", "batch",
         "BiQ model", "BiQ paper",
         "kGpu model", "kGpu paper",
         "cublas model", "cublas paper",
         "xnor model", "xnor paper"],
        notes=[
            "model = roofline cost model on the Table III V100 config",
            "shape to check: BiQGEMM fastest at small batch; cuBLAS "
            "overtakes at n=4096 b>=128; xnor flat and best at large "
            "batch for small n",
        ],
    )
    sizes = (512, 4096) if quick else (512, 1024, 2048, 4096)
    batches = (1, 256) if quick else (1, 32, 128, 256)
    for n in sizes:
        for b in batches:
            biq = estimate_biqgemm(v100, n, n, b, bits=1, mu=8).seconds * 1e6
            kgpu = estimate_gemm(v100, n, n, b, engine="naive").seconds * 1e6
            cublas = estimate_gemm(v100, n, n, b, engine="blas").seconds * 1e6
            xnor = estimate_xnor(v100, n, n, b).seconds * 1e6
            p = TABLE4_PAPER[(n, b)]
            table.add_row(
                n, b, biq, p[0], kgpu, p[1], cublas, p[2], xnor, p[3]
            )
    return [table]


# ----------------------------------------------------------------------
# Fig. 8 -- runtime profiling of BiQGEMM phases
# ----------------------------------------------------------------------
def fig8(quick: bool = False) -> list[Table]:
    """Measured build/query/replace proportions vs output size."""
    table = Table(
        "Fig. 8: BiQGEMM phase proportions (measured, batch 32, mu=8)",
        ["n", "m", "build %", "query %", "replace %", "total"],
        notes=[
            "shape to check: query share grows with m and dominates",
            "measured on this host's numpy kernel (single thread)",
        ],
    )
    rng = np.random.default_rng(8)
    n_list = (1024,) if quick else (1024, 2048)
    m_list = (512, 2048) if quick else (512, 1024, 2048, 4096, 8192)
    batch = 32
    for n in n_list:
        x = rng.standard_normal((n, batch)).astype(np.float32)
        for m in m_list:
            engine = BiQGemm.from_binary(_random_binary(rng, (m, n)), mu=8)
            engine.matmul(x, builder="dp")  # warm-up outside the profile
            prof = PhaseProfiler()
            repeats = 2 if quick else 3
            for _ in range(repeats):
                # builder='dp' mirrors the paper's CPU pipeline
                # (Algorithm 1 construction), as Fig. 8 profiles it.
                engine.matmul(x, builder="dp", profiler=prof)
            frac = prof.proportions()
            table.add_row(
                n,
                m,
                100 * frac["build"],
                100 * frac["query"],
                100 * frac["replace"],
                f"{prof.total / repeats * 1e3:.2f}ms",
            )
    return [table]


# ----------------------------------------------------------------------
# Fig. 9 -- unpacking overhead
# ----------------------------------------------------------------------
def fig9(quick: bool = False) -> list[Table]:
    """Packed-GEMM scenarios: measured wall clock + modelled CPU/GPU."""
    measured = Table(
        "Fig. 9 (measured): packed-weight GEMM scenarios, 1-bit, this host",
        ["m=n", "batch", "w/o unpack", "sGEMM", "w/ unpack",
         "unpack overhead x"],
        notes=[
            "shape to check: w/o unpack < sGEMM < w/ unpack",
            "'w/o unpack' computes WRONG values by design (bandwidth probe)",
        ],
    )
    rng = np.random.default_rng(9)
    sizes = (512,) if quick else (1024, 2048)
    batches = (32,) if quick else (32, 64, 128)
    for size in sizes:
        binary = _random_binary(rng, (size, size))
        dense = binary.astype(np.float32)
        packed = pack_bits(binary)
        for b in batches:
            x = rng.standard_normal((size, b)).astype(np.float32)
            t_no = time_callable(lambda: gemm_without_unpack(packed, x))
            t_sg = time_callable(lambda: sgemm(dense, x))
            t_un = time_callable(lambda: gemm_with_unpack(packed, x))
            measured.add_row(
                size,
                b,
                f"{t_no * 1e3:.3f}ms",
                f"{t_sg * 1e3:.3f}ms",
                f"{t_un * 1e3:.3f}ms",
                t_un / max(t_sg, 1e-12),
            )

    model = Table(
        "Fig. 9 (model): packed-weight GEMM scenarios on the paper machines",
        ["machine", "m=n", "batch", "w/o unpack", "sGEMM", "w/ unpack"],
        notes=["milliseconds on CPU rows, microseconds on V100 rows"],
    )
    for mkey in ("pc", "v100"):
        mc = MACHINES[mkey]
        unit, scale = ("ms", 1e3) if not mc.is_gpu else ("us", 1e6)
        for size in (1024, 2048):
            for b in (32, 64, 128):
                t_no = estimate_packed_gemm(
                    mc, size, size, b, scenario="without_unpack"
                ).seconds
                t_sg = estimate_packed_gemm(
                    mc, size, size, b, scenario="container"
                ).seconds
                t_un = estimate_packed_gemm(
                    mc, size, size, b, scenario="with_unpack"
                ).seconds
                model.add_row(
                    mkey,
                    size,
                    b,
                    f"{t_no * scale:.2f}{unit}",
                    f"{t_sg * scale:.2f}{unit}",
                    f"{t_un * scale:.2f}{unit}",
                )
    return [measured, model]


# ----------------------------------------------------------------------
# Fig. 10 -- speedup over Eigen
# ----------------------------------------------------------------------
def fig10(quick: bool = False) -> list[Table]:
    """Speedup of BiQGEMM over float GEMM: cost model + host wall clock."""
    model = Table(
        "Fig. 10 (model): BiQGEMM speedup over BLAS GEMM, 1 thread, n=1024",
        ["machine", "m", "batch", "1-bit", "2-bit", "3-bit"],
        notes=[
            "speedup = gemm_time / biqgemm_time from the cost model",
            "shape to check: speedup grows with m, shrinks with batch "
            "and bits; PC 3-bit crosses below 1.0 near batch 128; "
            "mobile stays above 1.0 longer",
        ],
    )
    n = 1024
    batches = (1, 8, 16, 32, 128, 256)
    for mkey in ("pc", "mobile"):
        mc = MACHINES[mkey]
        for m in (1024, 2048, 4096):
            for b in batches:
                gemm_t = estimate_gemm(mc, m, n, b, engine="blas").seconds
                speedups = []
                for bits in (1, 2, 3):
                    biq_t = estimate_biqgemm(mc, m, n, b, bits=bits).seconds
                    speedups.append(gemm_t / biq_t)
                model.add_row(mkey, m, b, *speedups)

    measured = Table(
        "Fig. 10 (measured): numpy BiQGEMM vs numpy BLAS on this host",
        ["m", "batch", "bits", "BLAS", "BiQGEMM", "speedup"],
        notes=[
            "numpy gathers cannot beat a tuned BLAS the way the paper's "
            "C++ kernel beats Eigen; recorded for honesty (see "
            "EXPERIMENTS.md) -- the cost model carries the shape claim",
        ],
    )
    rng = np.random.default_rng(10)
    m_list = (1024,) if quick else (1024, 2048)
    b_list = (1,) if quick else (1, 32)
    bits_list = (1,) if quick else (1, 3)
    for m in m_list:
        for bits in bits_list:
            binary = _random_binary(rng, (bits, m, n))
            engine = BiQGemm.from_binary(binary, mu=8)
            dense = binary[0].astype(np.float32)
            for b in b_list:
                x = rng.standard_normal((n, b)).astype(np.float32)
                t_blas = time_callable(lambda: sgemm(dense, x)) * max(bits, 1)
                t_biq = time_callable(lambda: engine.matmul(x))
                measured.add_row(
                    m,
                    b,
                    bits,
                    f"{t_blas * 1e3:.3f}ms",
                    f"{t_biq * 1e3:.3f}ms",
                    t_blas / max(t_biq, 1e-12),
                )
    return [model, measured]


# ----------------------------------------------------------------------
# Ablations
# ----------------------------------------------------------------------
def fig10_chart(machine_key: str = "pc", m: int = 1024) -> str:
    """ASCII rendering of Fig. 10's speedup-vs-batch curves.

    One chart per machine/output-size, three series (1/2/3-bit), drawn
    from the cost model; the CLI prints this under ``fig10 --plot``.
    """
    from repro.bench.plot import render_series

    mc = MACHINES[machine_key]
    batches = (1, 8, 16, 32, 64, 128, 256)
    series: dict[str, list[float]] = {}
    for bits in (1, 2, 3):
        vals = []
        for b in batches:
            gemm_t = estimate_gemm(mc, m, 1024, b).seconds
            biq_t = estimate_biqgemm(mc, m, 1024, b, bits=bits).seconds
            vals.append(gemm_t / biq_t)
        series[f"{bits}-bit"] = vals
    return render_series(
        f"Fig. 10 ({machine_key}): BiQGEMM speedup over GEMM, m={m}, n=1024",
        list(batches),
        series,
        y_label="speedup (cost model); 1.0 = parity",
    )


def mu_ablation(quick: bool = False) -> list[Table]:
    """LUT-unit sweep: analytic Eq. 9 ratio and measured kernel time."""
    from repro.core.autotune import empirical_mu

    analytic = Table(
        "mu ablation (analytic): Eq. 9 cost ratio (2^mu + m) / (m * mu)",
        ["m", "best mu"] + [f"mu={mu}" for mu in (2, 4, 6, 8, 10, 12)],
        notes=["paper: mu=8 is close to optimal across its sizes"],
    )
    for m in (512, 1024, 2048, 4096, 8192):
        ratios = [analytic_cost_ratio(mu, m) for mu in (2, 4, 6, 8, 10, 12)]
        analytic.add_row(m, analytic_mu(m), *ratios)

    measured = Table(
        "mu ablation (measured): kernel seconds per mu on this host",
        ["m", "n", "batch", "best mu", "timings"],
        notes=["empirical_mu on synthetic 1-bit weights"],
    )
    cases = [(1024, 1024, 8)] if quick else [(1024, 1024, 8), (2048, 1024, 32)]
    for m, n, b in cases:
        best, timings = empirical_mu(
            m, n, b, candidates=(4, 6, 8, 10), repeats=2 if quick else 3
        )
        pretty = ", ".join(f"mu{mu}={t * 1e3:.2f}ms" for mu, t in timings.items())
        measured.add_row(m, n, b, best, pretty)
    return [analytic, measured]


def lut_build_ablation(quick: bool = False) -> list[Table]:
    """DP vs GEMM table construction (paper Eq. 6 vs T_c,mm)."""
    table = Table(
        "LUT build ablation: dynamic programming vs GEMM construction",
        ["mu", "groups", "batch", "DP adds", "GEMM madds", "ratio",
         "DP ms", "DP-nosym ms", "GEMM ms"],
        notes=[
            "analytic ratio tends to mu (paper: DP is mu-fold cheaper)",
            "wall clock on this host's vectorized builders",
        ],
    )
    rng = np.random.default_rng(11)
    cases = [(8, 128, 32)] if quick else [(4, 128, 32), (8, 128, 32), (8, 256, 128)]
    for mu, groups, batch in cases:
        x = rng.standard_normal((groups * mu, batch)).astype(np.float32)
        xhat = reshape_input(x, mu)
        dp = dp_flop_count(mu, groups, batch)
        gm = gemm_build_flop_count(mu, groups, batch)
        t_dp = time_callable(lambda: build_tables_dp(xhat))
        t_ns = time_callable(lambda: build_tables_dp(xhat, use_symmetry=False))
        t_gm = time_callable(lambda: build_tables_gemm(xhat))
        table.add_row(
            mu, groups, batch, dp, gm, gm / dp,
            t_dp * 1e3, t_ns * 1e3, t_gm * 1e3,
        )
    return [table]


def tiling_ablation(quick: bool = False) -> list[Table]:
    """Tile-shape sweep: resident LUT bytes vs kernel time."""
    table = Table(
        "Tiling ablation: LUT-stationary tile shapes (m=2048, n=1024, b=32)",
        ["tile_m", "tile_g", "LUT bytes", "seconds"],
        notes=["all configurations produce identical outputs (tested)"],
    )
    rng = np.random.default_rng(12)
    m, n, b = (1024, 512, 16) if quick else (2048, 1024, 32)
    engine = BiQGemm.from_binary(_random_binary(rng, (m, n)), mu=8)
    x = rng.standard_normal((n, b)).astype(np.float32)
    groups = engine.key_matrix.groups
    configs = [
        TileConfig(tile_m=m, tile_g=groups),
        TileConfig(tile_m=m, tile_g=max(1, groups // 4)),
        TileConfig(tile_m=max(1, m // 4), tile_g=groups),
        TileConfig(tile_m=max(1, m // 8), tile_g=max(1, groups // 8)),
    ]
    for cfg in configs:
        t = time_callable(lambda: engine.matmul(x, tiles=cfg))
        table.add_row(
            cfg.tile_m,
            cfg.tile_g,
            lut_tile_bytes(cfg.tile_g, 8, b),
            t,
        )
    return [table]


def threads_ablation(quick: bool = False) -> list[Table]:
    """Thread scaling of the query phase (paper Section IV-D claim)."""
    table = Table(
        "Thread scaling: BiQGEMM matmul vs worker threads "
        "(measured + cost model)",
        ["m", "n", "batch", "threads", "seconds", "measured speedup",
         "model speedup (pc)"],
        notes=[
            "paper Section IV-D: multithreading improves both engines "
            "~linearly; the cost model reflects that via engaged units",
            "on the numpy substrate, fancy-index gathers hold the GIL, "
            "so measured scaling is limited -- an honest substrate gap "
            "(EXPERIMENTS.md)",
        ],
    )
    rng = np.random.default_rng(13)
    m, n, b = (2048, 1024, 32) if quick else (4096, 2048, 64)
    engine = BiQGemm.from_binary(_random_binary(rng, (m, n)), mu=8)
    x = rng.standard_normal((n, b)).astype(np.float32)
    tiles = TileConfig(tile_m=max(1, m // 16), tile_g=engine.key_matrix.groups)
    pc = MACHINES["pc"]
    base = None
    model_base = estimate_biqgemm(pc, m, n, b, threads=1).seconds
    for threads in (1, 2, 4):
        t = time_callable(
            lambda: engine.matmul(x, threads=threads, tiles=tiles),
            repeats=3,
        )
        if base is None:
            base = t
        model_t = estimate_biqgemm(pc, m, n, b, threads=threads).seconds
        table.add_row(m, n, b, threads, t, base / t, model_base / model_t)
    return [table]


def models_experiment(quick: bool = False) -> list[Table]:
    """Section II-C motivation: end-to-end layer costs per NLP model.

    For every model shape the paper cites (Transformer base/big,
    BERT-large, ALBERT-xxlarge, LAS), sums the cost-model time of all
    its weight GEMMs on the PC and mobile configs at batch 18 (the
    paper's average sub-word count) and reports weight footprints.
    """
    from repro.nn.model_zoo import MODEL_SHAPES, model_gemm_shapes

    table = Table(
        "Section II-C models: full-model GEMM time and weights "
        "(cost model, batch 18, 1 thread, 3-bit BCQ)",
        ["model", "GEMMs", "fp32 MB", "keys MB",
         "pc GEMM ms", "pc BiQ ms", "pc speedup",
         "mobile GEMM ms", "mobile BiQ ms", "mobile speedup"],
        notes=[
            "per-model totals over every attention/FFN/LSTM projection",
            "keys MB = 3-bit BiQGEMM key planes at mu=8",
        ],
    )
    bits, batch = 3, 18
    keys = ("transformer-base",) if quick else tuple(MODEL_SHAPES)
    for key in keys:
        shapes = model_gemm_shapes(key)
        fp32_mb = sum(m * n * 4 for _, m, n in shapes) / 1e6
        keys_mb = sum(m * -(-n // 8) * bits for _, m, n in shapes) / 1e6
        row = [key, len(shapes), fp32_mb, keys_mb]
        for mkey in ("pc", "mobile"):
            mc = MACHINES[mkey]
            t_gemm = sum(
                estimate_gemm(mc, m, n, batch).seconds for _, m, n in shapes
            )
            t_biq = sum(
                estimate_biqgemm(mc, m, n, batch, bits=bits).seconds
                for _, m, n in shapes
            )
            row.extend([t_gemm * 1e3, t_biq * 1e3, t_gemm / t_biq])
        table.add_row(*row)
    return [table]


def shared_ablation(quick: bool = False) -> list[Table]:
    """Shared-input LUT reuse across Q/K/V projections (extension).

    A :class:`~repro.core.group.BiQGemmGroup` builds tables once per
    input and streams all member key matrices against them; this
    quantifies the saving versus three independent multiplies.
    """
    from repro.core.group import BiQGemmGroup

    table = Table(
        "Shared-LUT ablation: fused QKV vs separate BiQGEMM multiplies",
        ["n=m", "batch", "separate s", "fused s", "speedup",
         "build adds saved"],
        notes=[
            "extension enabled by the paper's structure: Q/K/V share "
            "activations, hence lookup tables",
        ],
    )
    rng = np.random.default_rng(14)
    cases = [(512, 8)] if quick else [(512, 8), (1024, 8), (1024, 32)]
    for n, b in cases:
        engines = [
            BiQGemm.from_binary(_random_binary(rng, (n, n)), mu=8)
            for _ in range(3)
        ]
        group = BiQGemmGroup(engines)
        x = rng.standard_normal((n, b)).astype(np.float32)
        t_sep = time_callable(
            lambda: [e.matmul(x, builder="dp") for e in engines], repeats=3
        )
        t_fused = time_callable(
            lambda: group.matmul_shared(x, builder="dp"), repeats=3
        )
        savings = group.build_savings(b)
        table.add_row(
            n,
            b,
            t_sep,
            t_fused,
            t_sep / t_fused,
            savings["separate_build_adds"] - savings["shared_build_adds"],
        )
    return [table]


def cache_ablation(quick: bool = False) -> list[Table]:
    """Cache-locality ablation: simulated L1 hit rates of the query loop.

    Derives the paper's Section III-C locality argument from first
    principles: the gather address stream is replayed through an LRU
    set-associative model of the i7-7700 L1, with and without
    LUT-stationary tiling, across batch sizes.  The falling hit rate is
    the mechanism the cost model's ``spill_factor`` summarizes.
    """
    from repro.hw.cachesim import simulate_query_hit_rate

    table = Table(
        "Cache ablation: simulated L1 hit rate of the query phase "
        "(i7-7700 L1: 32KB/64B/8-way; m=256, n=1024, mu=8)",
        ["batch", "table KB", "untiled hit %", "L1-tile_g",
         "tiled hit %"],
        notes=[
            "shape to check: hit rate falls as one table outgrows L1; "
            "LUT-stationary tiling recovers locality but cannot undo "
            "the batch effect (paper Fig. 10 mechanism)",
        ],
    )
    batches = (1, 32) if quick else (1, 8, 32, 128)
    rows = 32 if quick else 64
    for b in batches:
        full = simulate_query_hit_rate(256, 1024, b, mu=8, max_rows=rows)
        table_bytes = int(full["table_bytes"])
        tile_g = max(1, (32 * 1024) // table_bytes)
        tiled = simulate_query_hit_rate(
            256, 1024, b, mu=8, tile_g=tile_g, max_rows=rows
        )
        table.add_row(
            b,
            table_bytes / 1024,
            100 * full["hit_rate"],
            tile_g,
            100 * tiled["hit_rate"],
        )
    return [table]


def dispatch_experiment(quick: bool = False) -> list[Table]:
    """Planner decisions and the BiQGEMM->dense crossover (Fig. 10).

    For each machine/size/bit-width, asks the cost-model planner which
    lossless engine serves each batch and records the batch at which
    the plan leaves BiQGEMM for the dense BLAS path -- the quantity the
    paper's Fig. 10 plots as the speedup curve crossing 1.0.
    """
    from repro.engine import QuantSpec, crossover_batch, plan_backend

    plans = Table(
        "Dispatch: planner choice per batch (lossless engines, mu=8)",
        ["machine", "n=m", "bits", "b=1", "b=8", "b=32", "b=128", "b=512",
         "crossover b"],
        notes=[
            "shape to check: BiQGEMM at small batch, dense at large; "
            "crossover falls with bits and rises on bandwidth-starved "
            "machines (paper Fig. 10 / Table IV)",
            "crossover b = smallest power-of-two batch not planned onto "
            "BiQGEMM ('-' = BiQGEMM to 1024)",
        ],
    )
    machines = ("pc",) if quick else ("pc", "mobile", "v100")
    sizes = (1024,) if quick else (512, 1024, 4096)
    bits_list = (1, 3) if quick else (1, 2, 3)
    batches = (1, 8, 32, 128, 512)
    for mkey in machines:
        for size in sizes:
            for bits in bits_list:
                spec = QuantSpec(bits=bits, backend="auto", machine=mkey)
                row = [mkey, size, bits]
                row.extend(
                    plan_backend(size, size, spec=spec, batch_hint=b)
                    for b in batches
                )
                cross = crossover_batch(size, size, spec=spec, machine=mkey)
                row.append("-" if cross is None else cross)
                plans.add_row(*row)
    return [plans]


def qat_experiment(quick: bool = False) -> list[Table]:
    """QAT vs PTQ (paper reference [48], DeepTwist weight distortion).

    The Table I BCQ rows come from quantization-aware retraining; this
    reruns the accuracy proxy with the distortion loop and shows how
    much of the post-training drop retraining recovers at 2-3 bits.
    """
    from repro.train.data import make_teacher_task
    from repro.train.qat import qat_vs_ptq

    table = Table(
        "QAT vs PTQ: accuracy proxy with DeepTwist-style weight distortion",
        ["bits", "float acc", "PTQ acc", "QAT acc", "drop recovered"],
        notes=[
            "QAT = retraining with occasional weight distortion "
            "(paper ref [48], used for its Table I BCQ rows)",
            "expected shape: QAT narrows the PTQ gap at 2-3 bits; "
            "1-bit stays broken even with retraining (paper: 0.4 BLEU)",
        ],
    )
    task = make_teacher_task()
    rows = qat_vs_ptq(
        task,
        bits_list=(2,) if quick else (1, 2, 3),
        epochs=8 if quick else 20,
    )
    for r in rows:
        ptq_drop = r["float_accuracy"] - r["ptq_accuracy"]
        recovered = (
            (r["qat_accuracy"] - r["ptq_accuracy"]) / ptq_drop
            if ptq_drop > 0
            else 0.0
        )
        table.add_row(
            int(r["bits"]),
            r["float_accuracy"],
            r["ptq_accuracy"],
            r["qat_accuracy"],
            recovered,
        )
    return [table]


def model_compile_experiment(quick: bool = False) -> list[Table]:
    """End-to-end model API: quantize -> compile -> save -> load.

    Exercises the whole :mod:`repro.api` pipeline on scaled-down
    Section II-C encoders: one mixed-bit-width config (3-bit attention,
    2-bit feed-forward via a glob override), a one-pass compile at the
    decode and scoring batch hints, the per-model cost report, the plan
    cache's shape-sharing across a deep stack, and a v3 whole-model
    artifact round trip with byte-identical outputs.
    """
    import tempfile
    from pathlib import Path

    import numpy as np

    from repro.api import QuantConfig, load, quantize, save
    from repro.engine import clear_plan_cache, plan_cache_stats
    from repro.nn.model_zoo import build_encoder

    table = Table(
        "Model compile: one-pass planning + v3 artifact round trip "
        "(3-bit, ffn.* overridden to 2-bit, mu=8)",
        ["model", "scale", "b hint", "gemms", "biqgemm", "dense",
         "pred s/pass", "cache hit %", "artifact KB", "roundtrip"],
        notes=[
            "shape to check: attention projections on BiQGEMM at decode "
            "batch, feed-forward shapes migrate to dense as the batch "
            "hint grows (paper Fig. 10 applied per layer)",
            "cache hit % counts plan-cache hits during compile: deep "
            "stacks price each distinct shape once",
            "roundtrip = save -> load in-process, outputs byte-identical",
        ],
    )
    settings = (
        [("transformer-base", 16, 2)]
        if quick
        else [("transformer-base", 16, 3), ("transformer-big", 16, 2)]
    )
    config = QuantConfig(bits=3, mu=8, overrides={"ffn.*": {"bits": 2}})
    rng = np.random.default_rng(0)
    for key, scale, layers in settings:
        for batch_hint in (1, 128):
            clear_plan_cache()
            encoder = build_encoder(key, scale=scale, layers=layers, seed=0)
            compiled = quantize(encoder, config).compile(
                batch_hint=batch_hint
            )
            report = compiled.cost_report()
            counts = report.by_backend()
            stats = plan_cache_stats()
            planned = stats["hits"] + stats["misses"]
            hit_pct = 100.0 * stats["hits"] / planned if planned else 0.0
            x = rng.standard_normal((1, 3, compiled.model.config.dim))
            expected = compiled(x)
            with tempfile.TemporaryDirectory() as tmp:
                path = Path(tmp) / "model.npz"
                save(compiled, path)
                nbytes = path.stat().st_size
                roundtrip = np.array_equal(load(path)(x), expected)
            table.add_row(
                key,
                scale,
                batch_hint,
                len(report.rows),
                counts.get("biqgemm", 0),
                counts.get("dense", 0),
                report.total_seconds,
                hit_pct,
                nbytes / 1024,
                "ok" if roundtrip else "MISMATCH",
            )
    return [table]


def serve_throughput_rows(
    quick: bool = False,
    *,
    clients: int | None = None,
    requests_per_client: int | None = None,
    workers: int = 2,
) -> list[dict]:
    """Measured serving throughput, dynamic batcher on vs off.

    Builds a zoo transformer encoder, compiles it at the decode batch
    hint (BiQGEMM everywhere), and serves the same concurrent client
    load twice through :class:`repro.serve.Server`: once with
    ``max_batch=1`` (every request executes alone) and once with the
    dynamic batcher coalescing toward the plan-cache buckets.  Each
    client thread fires its requests back-to-back; outputs are checked
    bit-identical against unbatched execution.  Returns one dict per
    mode with req/s, latency quantiles, mean batch and the speedup --
    the bench file asserts the acceptance bar on these numbers.
    """
    import threading
    import time

    from repro.api import QuantConfig, quantize
    from repro.nn.model_zoo import build_encoder
    from repro.serve import ServeConfig, Server

    clients = clients if clients is not None else (16 if quick else 64)
    requests_per_client = (
        requests_per_client
        if requests_per_client is not None
        else (4 if quick else 8)
    )
    encoder = build_encoder("transformer-base", scale=16, layers=2, seed=0)
    compiled = quantize(encoder, QuantConfig(bits=3, mu=8)).compile(
        batch_hint=1
    )
    compiled.warmup()
    rng = np.random.default_rng(0)
    dim = compiled.model.config.dim
    inputs = [rng.standard_normal((4, dim)) for _ in range(clients)]
    expected = [compiled(x[None])[0] for x in inputs]

    rows: list[dict] = []
    for mode, max_batch in (("off", 1), ("on", 64)):
        server = Server(
            config=ServeConfig(
                workers=workers,
                max_batch=max_batch,
                max_latency_ms=20.0,
                max_queue=4 * clients,
            )
        )
        server.add_model("zoo", compiled)
        mismatches: list[int] = []

        def run_client(i: int) -> None:
            for _ in range(requests_per_client):
                out = server.predict("zoo", inputs[i])
                if not np.array_equal(out, expected[i]):
                    mismatches.append(i)

        with server:
            threads = [
                threading.Thread(target=run_client, args=(i,))
                for i in range(clients)
            ]
            start = time.perf_counter()
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            elapsed = time.perf_counter() - start
            snap = server.metrics()["models"]["zoo"]
        total = clients * requests_per_client
        rows.append(
            {
                "mode": mode,
                "max_batch": max_batch,
                "clients": clients,
                "requests": total,
                "seconds": elapsed,
                "req_per_s": total / elapsed,
                "p50_ms": snap["latency_ms"]["p50"],
                "p95_ms": snap["latency_ms"]["p95"],
                "mean_batch": snap["lut_amortization_ratio"],
                "mismatches": len(mismatches),
            }
        )
    baseline = rows[0]["req_per_s"]
    for row in rows:
        row["speedup"] = row["req_per_s"] / baseline
    return rows


def steady_state_rows(
    quick: bool = False,
    *,
    batches: tuple[int, ...] | None = None,
    repeats: int | None = None,
) -> list[dict]:
    """Zero-allocation steady state: arenas on vs off, p50 + alloc.

    Builds a BCQ MLP (the Table I substrate -- token count equals the
    request batch, the paper's GEMV decode regime), compiles it at the
    decode hint, and for each small batch measures the CompiledModel
    forward twice: ``workspaces_enabled=False`` (the allocating
    pre-arena path) and ``True`` (warm arenas).  Each row reports p50
    latency for both modes, the per-call transient allocation footprint
    (tracemalloc peak bytes), and the arena counters.  A final row
    reports the engine-level criterion: tracked allocation events in
    the warmed BiQGemm flat-query hot loop, which must be zero.
    """
    import time

    from repro.api import QuantConfig, quantize
    from repro.api.model import QuantMLP
    from repro.core.kernel import BiQGemm
    from repro.core.profiling import measure_hot_loop
    from repro.core.workspace import Workspace
    from repro.nn.linear import Linear
    from repro.quant.bcq import bcq_quantize

    rng = np.random.default_rng(0)
    dims = (128, 256, 128, 16) if quick else (512, 1024, 1024, 512, 64)
    batches = batches if batches is not None else (
        (1, 4) if quick else (1, 2, 4, 8)
    )
    repeats = repeats if repeats is not None else (20 if quick else 60)
    layers = [
        Linear(
            rng.standard_normal((dims[i + 1], dims[i])) * 0.05,
            rng.standard_normal(dims[i + 1]) * 0.01,
        )
        for i in range(len(dims) - 1)
    ]
    compiled = quantize(QuantMLP(layers), QuantConfig(bits=3, mu=8)).compile(
        batch_hint=1
    )
    compiled.warmup(sample=rng.standard_normal(dims[0]))

    def p50(x) -> float:
        for _ in range(max(5, repeats // 4)):
            compiled(x)
        times = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            compiled(x)
            times.append(time.perf_counter() - t0)
        times.sort()
        return times[len(times) // 2]

    rows: list[dict] = []
    for batch in batches:
        x = rng.standard_normal((batch, dims[0]))
        compiled.workspaces_enabled = False
        off_p50 = p50(x)
        off_alloc = measure_hot_loop(
            lambda: compiled(x), warmups=2, repeats=3, min_alloc_bytes=1
        )
        compiled.workspaces_enabled = True
        on_p50 = p50(x)
        on_alloc = measure_hot_loop(
            lambda: compiled(x), warmups=2, repeats=3, min_alloc_bytes=1
        )
        stats = compiled.workspace_stats()
        rows.append(
            {
                "kind": "model",
                "batch": batch,
                "off_p50_ms": off_p50 * 1e3,
                "on_p50_ms": on_p50 * 1e3,
                "p50_reduction": (off_p50 - on_p50) / off_p50,
                "off_alloc_bytes": off_alloc["peak_new_bytes"],
                "on_alloc_bytes": on_alloc["peak_new_bytes"],
                "arena_bytes": stats["bytes_resident"],
                "arena_hit_rate": stats["hits"]
                / max(1, stats["hits"] + stats["misses"]),
            }
        )

    # Engine-level criterion: the flat-query hot loop allocates nothing.
    m, n = (128, 256) if quick else (512, 1024)
    engine = BiQGemm.from_bcq(
        bcq_quantize(rng.standard_normal((m, n)), 3), mu=8
    )
    xe = rng.standard_normal((n, 1)).astype(np.float32)
    ws = Workspace()

    def hot():
        ws.reset()
        engine.matmul(xe, query_impl="flat", builder="gemm", workspace=ws)

    report = measure_hot_loop(hot, warmups=3, repeats=5)
    rows.append(
        {
            "kind": "engine_flat",
            "batch": 1,
            "alloc_events": report["alloc_events"],
            "peak_new_bytes": report["peak_new_bytes"],
            "min_alloc_bytes": report["min_alloc_bytes"],
        }
    )
    return rows


def steady_state_experiment(quick: bool = False) -> list[Table]:
    """Workspace arenas: allocation churn and small-batch p50, on vs
    off (the zero-allocation steady-state claim, measured)."""
    table = Table(
        "Steady state: CompiledModel forward with workspace arenas "
        "(BCQ MLP, 3-bit, mu=8, decode compile hint)",
        ["batch", "p50 off ms", "p50 on ms", "reduction %",
         "alloc/call off", "alloc/call on", "arena bytes", "hit %"],
        notes=[
            "shape to check: arenas cut per-call transient allocation "
            "bytes several-fold and the flat-query engine hot loop "
            "allocates nothing at all (events == 0)",
            "off = workspaces_enabled=False: isolates the arena effect "
            "on this build's kernel.  The >= 20% small-batch p50 "
            "acceptance bar is measured against the pre-PR execution "
            "path (seed query kernel, no arenas) by "
            "benchmarks/bench_steady_state.py",
        ],
    )
    rows = steady_state_rows(quick)
    for row in rows:
        if row["kind"] != "model":
            continue
        table.add_row(
            row["batch"],
            row["off_p50_ms"],
            row["on_p50_ms"],
            100.0 * row["p50_reduction"],
            row["off_alloc_bytes"],
            row["on_alloc_bytes"],
            row["arena_bytes"],
            100.0 * row["arena_hit_rate"],
        )
    engine_row = next(r for r in rows if r["kind"] == "engine_flat")
    table.notes.append(
        f"engine flat-query hot loop: {engine_row['alloc_events']} "
        f"allocation events (peak {engine_row['peak_new_bytes']} B, "
        f"threshold {engine_row['min_alloc_bytes']} B)"
    )
    return [table]


def compiled_kernels_rows(
    quick: bool = False,
    *,
    batches: tuple[int, ...] | None = None,
    repeats: int | None = None,
) -> list[dict]:
    """Per-shape specialized fused kernels vs the existing engines.

    The compiled engine's home regime is the paper's Table IV setting:
    1-bit weights, GEMV/small-batch, output-heavy shapes -- where LUT
    query work is minimal (one bit plane) while dense BLAS still pays
    the full float weight stream.  For each batch this measures the
    fused ``relu(W @ x + bias)`` step three ways: the compiled trace,
    the biqgemm reference plus a separate bias/activation epilogue, and
    dense BLAS plus the same epilogue.  Outputs are checked bit-identical
    against the batch-invariant loop-query reference; a final row
    records the modelled batch at which the planner would leave the
    compiled engine (the fusion crossover).
    """
    import time

    from repro.core.profiling import measure_hot_loop
    from repro.engine import (
        EngineBuildRequest,
        QuantSpec,
        build_engine,
        lossless_engines,
        plan_backend,
    )
    from repro.nn.functional import relu

    m = n = 2048 if quick else 4096
    bits, mu = 1, 8
    batches = batches if batches is not None else (1, 2)
    repeats = repeats if repeats is not None else (30 if quick else 40)
    rng = np.random.default_rng(0)
    w = rng.standard_normal((m, n))
    bias = rng.standard_normal(m)
    base_spec = QuantSpec(bits=bits, mu=mu)
    fused_spec = QuantSpec(bits=bits, mu=mu, backend="compiled", fuse="relu")
    compiled = build_engine(
        "compiled", EngineBuildRequest(spec=fused_spec, weight=w, bias=bias)
    )
    biq = build_engine(
        "biqgemm", EngineBuildRequest(spec=base_spec, weight=w)
    )
    dense = build_engine(
        "dense", EngineBuildRequest(spec=base_spec, weight=w)
    )

    def quantiles(fn, x) -> tuple[float, float]:
        fn(x)  # warm (build traces / cast caches)
        times = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            fn(x)
            times.append(time.perf_counter() - t0)
        times.sort()
        return times[len(times) // 2], times[int(0.95 * (len(times) - 1))]

    bias_col = bias[:, None]
    rows: list[dict] = []
    for b in batches:
        x = rng.standard_normal((n, b))
        # Bit-identity anchor: the batch-invariant loop-query reference
        # plus the same epilogue chain the trace folds in.  biqgemm
        # ships batch-invariant by default -- that default IS the
        # unfused reference, so it is measured as-is; the non-invariant
        # fast mode forfeits bit-identity and is reported as an
        # informational column, never as the gated baseline.
        want = relu(biq.matmul(x) + bias_col)
        got = compiled.matmul(x)
        identical = bool(np.array_equal(got, want)) and got.dtype == want.dtype
        c50, c95 = quantiles(lambda x: compiled.matmul(x), x)
        b50, _ = quantiles(lambda x: relu(biq.matmul(x) + bias_col), x)
        d50, _ = quantiles(lambda x: relu(dense.matmul(x) + bias_col), x)
        biq.batch_invariant = False
        f50, _ = quantiles(lambda x: relu(biq.matmul(x) + bias_col), x)
        biq.batch_invariant = True
        alloc = measure_hot_loop(
            lambda: compiled.matmul(x), warmups=2, repeats=3,
            min_alloc_bytes=1,
        )
        rows.append(
            {
                "kind": "step",
                "m": m,
                "n": n,
                "bits": bits,
                "batch": b,
                "identical": identical,
                "compiled_p50_us": c50 * 1e6,
                "compiled_p95_us": c95 * 1e6,
                "biqgemm_p50_us": b50 * 1e6,
                "biqgemm_fast_p50_us": f50 * 1e6,
                "dense_p50_us": d50 * 1e6,
                "speedup_vs_biqgemm": b50 / c50,
                "speedup_vs_best": min(b50, d50) / c50,
                "req_per_s": 1.0 / c50,
                "alloc_per_call_bytes": alloc["peak_new_bytes"],
            }
        )

    # Modelled fusion crossover: the first power-of-two batch at which
    # the planner stops choosing the compiled engine for this shape.
    crossover = None
    candidates = lossless_engines() + ("compiled",)
    trial = QuantSpec(bits=bits, mu=mu, fuse="relu")
    b = 1
    while b <= 1024:
        choice = plan_backend(
            m, n, spec=trial, batch_hint=b, candidates=candidates
        )
        if choice != "compiled":
            crossover = b
            break
        b *= 2
    rows.append({"kind": "crossover", "batch": crossover})
    return rows


def compiled_kernels_experiment(quick: bool = False) -> list[Table]:
    """Fused per-shape kernels: compiled engine vs biqgemm/dense at the
    GEMV decode regime (measured, plus the modelled crossover)."""
    table = Table(
        "Compiled kernels: fused relu(Wx+b) step, 1-bit mu=8 "
        "(measured p50/p95 on this host)",
        ["m=n", "batch", "compiled p50 us", "p95 us", "biqgemm+epi us",
         "biq-fast+epi us", "dense+epi us", "vs biqgemm", "vs best",
         "identical"],
        notes=[
            "shape to check: compiled >= 1.2x the best existing engine "
            "at its shipped defaults at batch 1-2 on the paper's 1-bit "
            "Table IV shapes, and bit-identical to the batch-invariant "
            "reference",
            "biq-fast = biqgemm with batch_invariant=False: not "
            "bit-identical to the reference, shown for scale only",
        ],
    )
    rows = compiled_kernels_rows(quick)
    for row in rows:
        if row["kind"] != "step":
            continue
        table.add_row(
            row["m"],
            row["batch"],
            row["compiled_p50_us"],
            row["compiled_p95_us"],
            row["biqgemm_p50_us"],
            row["biqgemm_fast_p50_us"],
            row["dense_p50_us"],
            row["speedup_vs_biqgemm"],
            row["speedup_vs_best"],
            "ok" if row["identical"] else "MISMATCH",
        )
    cross = next(r for r in rows if r["kind"] == "crossover")
    table.notes.append(
        "modelled planner crossover away from compiled: "
        f"batch {cross['batch'] if cross['batch'] else '> 1024'}"
    )
    return [table]


def serve_experiment(quick: bool = False) -> list[Table]:
    """Serving throughput: dynamic batcher vs batch-1 (the amortization
    claim, deployed).

    The paper's speedups exist because LUT construction amortizes over
    input columns; a serving runtime realises them only if something
    *creates* those columns from single-request traffic.  This measures
    exactly that: same model, same concurrent clients, batcher off vs
    on.
    """
    table = Table(
        "Serve throughput: dynamic micro-batching vs batch-1 serving "
        "(zoo transformer encoder, 3-bit BCQ, in-process clients)",
        ["batcher", "clients", "requests", "req/s", "speedup",
         "p50 ms", "p95 ms", "mean batch", "outputs"],
        notes=[
            "shape to check: batcher >= 2x req/s of batch-1 serving, "
            "outputs bit-identical to unbatched execution",
            "mean batch = requests served per model execution (the "
            "LUT-amortization ratio)",
        ],
    )
    for row in serve_throughput_rows(quick):
        table.add_row(
            row["mode"],
            row["clients"],
            row["requests"],
            row["req_per_s"],
            row["speedup"],
            row["p50_ms"],
            row["p95_ms"],
            row["mean_batch"],
            "ok" if row["mismatches"] == 0 else "MISMATCH",
        )
    return [table]


def serve_cluster_rows(
    quick: bool = False,
    *,
    clients: int | None = None,
    requests_per_client: int | None = None,
) -> list[dict]:
    """Process-pool serving under failure: the robustness contract,
    measured.

    Serves a quantized zoo encoder from a supervised **process** pool
    (``ServeConfig(cluster=True)``: one shared-memory model copy, N
    worker processes) and drives the same concurrent client load
    through three phases:

    - **cluster**: steady state, 2 workers -- establishes req/s and
      that every output is bit-identical to local execution;
    - **killed**: same load, but worker 0 is SIGKILLed mid-load --
      in-flight batches must be redelivered to the survivor and the
      slot respawned, with *zero* client-visible errors;
    - **scaling** (hosts with >= 4 cores only): 4 workers vs 1, the
      process-parallel speedup.  Narrow hosts skip the row entirely
      rather than record scheduler noise.

    The gated metrics are the zero-error flags, which are
    host-portable; req/s is recorded for the trajectory only.
    """
    import os
    import signal
    import threading
    import time

    from repro.api import QuantConfig, quantize
    from repro.nn.model_zoo import build_encoder
    from repro.serve import ServeConfig, Server
    from repro.serve.cluster import ClusterConfig

    clients = clients if clients is not None else (4 if quick else 8)
    requests_per_client = (
        requests_per_client
        if requests_per_client is not None
        else (4 if quick else 8)
    )
    encoder = build_encoder("transformer-base", scale=16, layers=1, seed=0)
    compiled = quantize(encoder, QuantConfig(bits=2, mu=4)).compile(
        batch_hint=1
    )
    compiled.warmup()
    rng = np.random.default_rng(0)
    dim = compiled.model.config.dim
    inputs = [rng.standard_normal((4, dim)) for _ in range(clients)]
    expected = [compiled(x[None])[0] for x in inputs]
    cluster_config = ClusterConfig(
        heartbeat_interval_s=0.1,
        heartbeat_timeout_s=2.0,
        start_timeout_s=180.0,
        respawn_backoff_s=0.05,
        redelivery_wait_s=120.0,
    )

    def run_load(workers: int, *, kill: bool = False) -> dict:
        server = Server(
            config=ServeConfig(
                workers=workers,
                max_batch=8,
                max_latency_ms=2.0,
                max_queue=4 * clients * requests_per_client,
                cluster=True,
                cluster_config=cluster_config,
            )
        )
        server.add_model("zoo", compiled)
        errors: list[BaseException] = []
        mismatches: list[int] = []

        def run_client(i: int) -> None:
            for _ in range(requests_per_client):
                try:
                    out = server.predict("zoo", inputs[i], timeout=120.0)
                except Exception as exc:  # noqa: BLE001 -- tallied
                    errors.append(exc)
                else:
                    if not np.array_equal(out, expected[i]):
                        mismatches.append(i)

        with server:
            threads = [
                threading.Thread(target=run_client, args=(i,))
                for i in range(clients)
            ]
            start = time.perf_counter()
            # The kill must land while requests are in flight, so the
            # killed phase staggers the clients around the SIGKILL.
            first = threads[: len(threads) // 2] if kill else threads
            for t in first:
                t.start()
            if kill:
                time.sleep(0.02)
                victim = server._runtimes["zoo"].pool._supervisor.handle(0)
                os.kill(victim.pid, signal.SIGKILL)
                for t in threads[len(threads) // 2:]:
                    t.start()
            for t in threads:
                t.join()
            elapsed = time.perf_counter() - start
            stats = server.metrics()["models"]["zoo"]["cluster"]
            if kill:
                # Wait out the supervisor's accounting of the death so
                # the recorded deaths/respawns reflect the kill.
                deadline = time.monotonic() + 30.0
                while time.monotonic() < deadline:
                    stats = server.metrics()["models"]["zoo"]["cluster"]
                    if stats["deaths"] >= 1 and all(
                        w["alive"] for w in stats["workers"]
                    ):
                        break
                    time.sleep(0.1)
        total = clients * requests_per_client
        return {
            "workers": workers,
            "requests": total,
            "seconds": elapsed,
            "req_per_s": total / elapsed,
            "errors": len(errors),
            "mismatches": len(mismatches),
            "deaths": stats["deaths"],
            "respawns": stats["respawns"],
            "redelivered": stats["redelivered"],
            "shared_kb": stats["shared_bytes"] / 1024,
        }

    rows = [
        {"kind": "cluster", **run_load(2)},
        {"kind": "killed", **run_load(2, kill=True)},
    ]
    if (os.cpu_count() or 1) >= 4:
        narrow = run_load(1)
        wide = run_load(4)
        rows.append(
            {
                "kind": "scaling",
                **wide,
                "scaling_vs_1worker": wide["req_per_s"]
                / max(narrow["req_per_s"], 1e-9),
            }
        )
    return rows


def serve_cluster_experiment(quick: bool = False) -> list[Table]:
    """Cluster serving: zero client-visible errors across worker death.

    The robustness analogue of the ``serve`` experiment: same client
    load, but through the supervised process pool -- steady state,
    then with a worker SIGKILLed mid-load (redelivery must hide it),
    then (on wide-enough hosts) the 4-vs-1 worker scaling.
    """
    table = Table(
        "Cluster serving: supervised process pool, steady vs SIGKILL "
        "mid-load (zoo transformer encoder, 2-bit BCQ, one "
        "shared-memory model copy)",
        ["phase", "workers", "requests", "req/s", "errors",
         "mismatches", "deaths", "respawns", "redelivered"],
        notes=[
            "shape to check: zero errors and zero mismatches in every "
            "phase -- including the one where a worker is SIGKILLed "
            "mid-load (in-flight batches redeliver to the survivor)",
            "the scaling phase appears only on hosts with >= 4 cores; "
            "narrow hosts would record scheduler noise, not scaling",
        ],
    )
    for row in serve_cluster_rows(quick):
        table.add_row(
            row["kind"],
            row["workers"],
            row["requests"],
            row["req_per_s"],
            row["errors"],
            row["mismatches"],
            row["deaths"],
            row["respawns"],
            row["redelivered"],
        )
    return [table]


def decode_rows(
    quick: bool = False,
    *,
    lengths: tuple[int, ...] | None = None,
    sequence_counts: tuple[int, ...] | None = None,
) -> list[dict]:
    """Autoregressive decode: KV-cached step loop vs full recompute.

    The paper's headline regime is the batch-1 GEMV of autoregressive
    decoding; this measures the runtime that serves it.  A quantized
    :class:`~repro.gen.DecoderLM` (biqgemm backend, decode compile
    hint) decodes to several total sequence lengths two ways:

    - **cached**: ``CompiledModel.generate`` -- one prefill, then one
      single-token ``step()`` per emitted token against the KV cache;
    - **recompute**: the pre-``repro.gen`` loop -- every emitted token
      re-runs the full causal forward over the whole prefix.

    Both are greedy and must emit the *same token ids* (the KV cache
    is bit-identical to the recompute, so this is an equality check on
    the whole chain, not a tolerance).  A second sweep drives 1..n
    concurrent streams through the :class:`SequenceScheduler` and
    reports aggregate tokens/s plus the coalescing ratio
    (tokens per decode tick -- the continuous-batching LUT
    amortization).
    """
    import threading
    import time

    from repro.api import QuantConfig, quantize
    from repro.gen.model import DecoderLM
    from repro.nn.transformer import TransformerConfig
    from repro.serve.sequences import SequenceScheduler
    from repro.serve.telemetry import GenTelemetry

    rng = np.random.default_rng(0)
    if quick:
        config = TransformerConfig(dim=32, heads=4, ff_dim=64, layers=2)
        vocab = 64
    else:
        config = TransformerConfig(dim=128, heads=8, ff_dim=256, layers=4)
        vocab = 256
    lengths = lengths if lengths is not None else (
        (64, 256) if quick else (64, 128, 256)
    )
    sequence_counts = sequence_counts if sequence_counts is not None else (
        (1, 4) if quick else (1, 2, 4, 8)
    )
    compiled = quantize(
        DecoderLM(config, vocab, seed=0),
        QuantConfig(bits=3, mu=8, backend="biqgemm"),
    ).compile(batch_hint=1)

    prompt_len = 8
    prompt = rng.integers(0, vocab, size=prompt_len)
    compiled.generate(prompt, 4)  # warm: LUTs, arenas, cache buckets

    rows: list[dict] = []
    for length in lengths:
        new_tokens = length - prompt_len
        t0 = time.perf_counter()
        cached = compiled.generate(prompt, new_tokens)
        cached_s = time.perf_counter() - t0

        ids = [int(t) for t in prompt]
        recompute: list[int] = []
        t0 = time.perf_counter()
        for _ in range(new_tokens):
            logits = compiled(np.asarray([ids], dtype=np.int64))
            token = int(np.argmax(logits[0, -1]))
            ids.append(token)
            recompute.append(token)
        recompute_s = time.perf_counter() - t0

        rows.append(
            {
                "kind": "decode",
                "length": length,
                "new_tokens": new_tokens,
                "cached_tok_per_s": new_tokens / cached_s,
                "recompute_tok_per_s": new_tokens / recompute_s,
                "speedup": recompute_s / cached_s,
                "identical": cached == recompute,
            }
        )

    decode_tokens = 16 if quick else 32
    for count in sequence_counts:
        telemetry = GenTelemetry()
        prompts = [
            rng.integers(0, vocab, size=prompt_len) for _ in range(count)
        ]
        with SequenceScheduler(
            compiled,
            max_sequences=count,
            name=f"bench{count}",
            telemetry=telemetry,
        ) as scheduler:
            barrier = threading.Barrier(count)

            def consume(p):
                stream = scheduler.generate(p, decode_tokens)
                barrier.wait()
                list(stream)

            threads = [
                threading.Thread(target=consume, args=(p,)) for p in prompts
            ]
            t0 = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            elapsed = time.perf_counter() - t0
        rows.append(
            {
                "kind": "scheduler",
                "sequences": count,
                "tok_per_s": count * decode_tokens / elapsed,
                "coalescing_ratio": telemetry.coalescing_ratio,
            }
        )
    return rows


def decode_experiment(quick: bool = False) -> list[Table]:
    """Autoregressive decode: KV-cached generate() vs full recompute,
    plus continuously-batched multi-stream throughput."""
    decode_table = Table(
        "Decode throughput: KV-cached step loop vs full recompute "
        "(DecoderLM, 3-bit BCQ, biqgemm, greedy)",
        ["total len", "new tokens", "cached tok/s", "recompute tok/s",
         "speedup", "tokens"],
        notes=[
            "shape to check: speedup grows with sequence length (the "
            "recompute loop is O(t) forwards of O(t) work each) and "
            "reaches >= 5x at 256-token sequences",
            "tokens must read 'identical': the KV-cached chain emits "
            "bit-for-bit the same ids as the recompute chain",
        ],
    )
    scheduler_table = Table(
        "Continuous batching: concurrent streams through the "
        "SequenceScheduler (one coalesced step_many per tick)",
        ["sequences", "aggregate tok/s", "coalescing ratio"],
        notes=[
            "coalescing ratio = tokens per decode tick; > 1 means the "
            "scheduler is amortizing LUT construction across streams",
        ],
    )
    for row in decode_rows(quick):
        if row["kind"] == "decode":
            decode_table.add_row(
                row["length"],
                row["new_tokens"],
                row["cached_tok_per_s"],
                row["recompute_tok_per_s"],
                row["speedup"],
                "identical" if row["identical"] else "MISMATCH",
            )
        else:
            scheduler_table.add_row(
                row["sequences"],
                row["tok_per_s"],
                row["coalescing_ratio"],
            )
    return [decode_table, scheduler_table]


def obs_overhead_rows(
    quick: bool = False,
    *,
    batches: tuple[int, ...] | None = None,
    repeats: int | None = None,
) -> list[dict]:
    """Observability cost: model-forward p50 with obs off, tracing on,
    and the sampling profiler on.

    The :mod:`repro.obs` contract is that *disabled* observability costs
    one boolean read on the hot path; *enabled* tracing pays for span
    objects, the profiler bridge, and (on engines that accept a
    profiler) the un-fused kernel path; the *sampling profiler* is the
    always-on tier and must stay under ~1% (it never touches the hot
    path -- its cost is a 97 Hz ``sys._current_frames()`` walk on its
    own thread, plus GIL contention).  This measures all three on the
    steady-state substrate so the trade is a number, not a claim.
    """
    import time

    import repro.obs as obs
    from repro.api import QuantConfig, quantize
    from repro.api.model import QuantMLP
    from repro.nn.linear import Linear
    from repro.obs.trace import get_tracer

    rng = np.random.default_rng(0)
    dims = (128, 256, 16) if quick else (512, 1024, 512, 64)
    batches = batches if batches is not None else (
        (1, 4) if quick else (1, 2, 8)
    )
    repeats = repeats if repeats is not None else (20 if quick else 60)
    layers = [
        Linear(
            rng.standard_normal((dims[i + 1], dims[i])) * 0.05,
            rng.standard_normal(dims[i + 1]) * 0.01,
        )
        for i in range(len(dims) - 1)
    ]
    compiled = quantize(QuantMLP(layers), QuantConfig(bits=3, mu=8)).compile(
        batch_hint=1
    )
    compiled.warmup(sample=rng.standard_normal(dims[0]))

    def p50(x) -> float:
        for _ in range(max(5, repeats // 4)):
            compiled(x)
        times = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            compiled(x)
            times.append(time.perf_counter() - t0)
        times.sort()
        return times[len(times) // 2]

    rows: list[dict] = []
    try:
        for batch in batches:
            x = rng.standard_normal((batch, dims[0]))
            obs.disable()
            off_p50 = p50(x)
            obs.enable(tracing=True, drift=True, clear=True)
            on_p50 = p50(x)
            spans = get_tracer().stats()["recorded"]
            obs.disable()
            # Profiler only: the hot path stays on its fused fast path
            # (no spans, no drift) while the sampler walks frames from
            # its own thread at the default 97 Hz.
            obs.enable(
                tracing=False, drift=False, profile=True, clear=True
            )
            profiled_p50 = p50(x)
            profiler = obs.get_profiler()
            samples = profiler.stats()["samples"] if profiler else 0
            obs.disable()
            rows.append(
                {
                    "batch": batch,
                    "off_p50_ms": off_p50 * 1e3,
                    "on_p50_ms": on_p50 * 1e3,
                    "overhead": (on_p50 - off_p50) / off_p50,
                    "profiled_p50_ms": profiled_p50 * 1e3,
                    "profiler_overhead": (profiled_p50 - off_p50) / off_p50,
                    "profiler_samples": samples,
                    "spans_recorded": spans,
                }
            )
    finally:
        obs.disable()
        get_tracer().clear()
    return rows


def profiler_cost(
    quick: bool = False,
    *,
    attempts: int = 3,
    repeats: int | None = None,
) -> dict:
    """The always-on sampling profiler's hot-path tax, measured to gate.

    min-of-N forward times with the profiler off vs on (default 97 Hz),
    interleaved and repeated *attempts* times; the reported ratio is
    the best attempt.  min-of-N rejects additive noise (every slower
    sample is the same work plus interference), and best-of-attempts
    rejects a whole attempt poisoned by a scheduling storm -- a real
    regression fails every attempt.
    """
    import time

    import repro.obs as obs
    from repro.api import QuantConfig, quantize
    from repro.api.model import QuantMLP
    from repro.nn.linear import Linear

    rng = np.random.default_rng(0)
    dims = (256, 512, 256, 32) if quick else (512, 1024, 512, 64)
    repeats = repeats if repeats is not None else (30 if quick else 60)
    layers = [
        Linear(
            rng.standard_normal((dims[i + 1], dims[i])) * 0.05,
            rng.standard_normal(dims[i + 1]) * 0.01,
        )
        for i in range(len(dims) - 1)
    ]
    compiled = quantize(QuantMLP(layers), QuantConfig(bits=3, mu=8)).compile(
        batch_hint=1
    )
    compiled.warmup(sample=rng.standard_normal(dims[0]))
    x = rng.standard_normal((2, dims[0]))

    def min_time() -> float:
        for _ in range(8):
            compiled(x)
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            compiled(x)
            best = min(best, time.perf_counter() - t0)
        return best

    best = None
    samples = 0
    try:
        for _ in range(max(1, attempts)):
            obs.disable()
            off = min_time()
            obs.enable(
                tracing=False, drift=False, profile=True, clear=True
            )
            on = min_time()
            profiler = obs.get_profiler()
            if profiler is not None:
                samples = max(samples, profiler.stats()["samples"])
            obs.disable()
            if best is None or on / off < best[0]:
                best = (on / off, off, on)
    finally:
        obs.disable()
    ratio, off, on = best
    return {
        "ratio": ratio,
        "off_min_ms": off * 1e3,
        "profiled_min_ms": on * 1e3,
        "profiler_samples": samples,
        "attempts": attempts,
    }


def obs_overhead_experiment(quick: bool = False) -> list[Table]:
    """Observability: traced vs untraced forward p50 (the no-op-path
    cost claim, measured)."""
    table = Table(
        "Observability overhead: CompiledModel forward p50, obs "
        "disabled vs tracing+drift enabled vs sampling profiler "
        "(97 Hz) alone (BCQ MLP, 3-bit, mu=8)",
        [
            "batch",
            "p50 off ms",
            "p50 traced ms",
            "overhead %",
            "p50 profiled ms",
            "profiler %",
            "spans",
        ],
        notes=[
            "shape to check: the off column matches the steady_state "
            "bench (disabled obs is one boolean read per call site); "
            "the traced column buys per-layer engine.matmul and kernel "
            "phase spans",
            "traced runs opt engines with accepts_profiler out of "
            "their fused fast path, so overhead bounds the *worst* "
            "cost of tracing, not the typical scrape cost (metrics "
            "collectors are pull-only)",
            "the profiler column is the always-on tier: frame walks "
            "on the sampler's own thread, hot path untouched -- "
            "bench_obs_overhead.py gates it under 1%",
        ],
    )
    for row in obs_overhead_rows(quick):
        table.add_row(
            row["batch"],
            row["off_p50_ms"],
            row["on_p50_ms"],
            100.0 * row["overhead"],
            row["profiled_p50_ms"],
            100.0 * row["profiler_overhead"],
            row["spans_recorded"],
        )
    return [table]


EXPERIMENTS: dict[str, Callable[[bool], list[Table]]] = {
    "table1": table1,
    "table2": table2,
    "table3": table3,
    "table4": table4,
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
    "mu": mu_ablation,
    "lut_build": lut_build_ablation,
    "tiling": tiling_ablation,
    "threads": threads_ablation,
    "models": models_experiment,
    "shared": shared_ablation,
    "cache": cache_ablation,
    "qat": qat_experiment,
    "dispatch": dispatch_experiment,
    "model_compile": model_compile_experiment,
    "serve": serve_experiment,
    "serve_cluster": serve_cluster_experiment,
    "steady_state": steady_state_experiment,
    "compiled_kernels": compiled_kernels_experiment,
    "obs_overhead": obs_overhead_experiment,
    "decode": decode_experiment,
}
"""Experiment id -> callable (see DESIGN.md Section 4 for the mapping)."""


def run_experiment(name: str, *, quick: bool = False) -> list[Table]:
    """Run one registered experiment and return its tables."""
    try:
        fn = EXPERIMENTS[name]
    except KeyError:
        raise ValueError(
            f"unknown experiment {name!r}; expected one of {sorted(EXPERIMENTS)}"
        ) from None
    return fn(quick)
