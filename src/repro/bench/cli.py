"""Command line for the experiment harness.

Usage::

    python -m repro.bench list
    python -m repro.bench table4
    python -m repro.bench all --quick --out results/
    python -m repro.bench steady_state --emit-json
    python -m repro.bench compare compiled_kernels

``all`` runs every registered experiment; ``--out`` additionally writes
one ``<experiment>.txt`` artifact per experiment.  ``--emit-json``
writes the experiment's ``BENCH_<experiment>.json`` perf-trajectory
record at the repo root (hot-path experiments only); ``compare``
re-measures an experiment and fails (exit 1) when a gated metric
regresses past the committed baseline by more than ``--threshold``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.bench.registry import EXPERIMENTS, run_experiment
from repro.bench.report import render_table
from repro.bench.trajectory import (
    collect_metrics,
    compare_metrics,
    load_trajectory,
    trajectory_path,
    write_trajectory,
)

__all__ = ["main"]


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Regenerate the BiQGEMM paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        help="experiment id, 'all', 'list', or 'compare' "
        f"(ids: {', '.join(sorted(EXPERIMENTS))})",
    )
    parser.add_argument(
        "target",
        nargs="?",
        default=None,
        help="for 'compare': the experiment whose committed "
        "BENCH_<experiment>.json baseline to diff against",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shrink sweeps for a fast smoke run",
    )
    parser.add_argument(
        "--emit-json",
        action="store_true",
        help="also write BENCH_<experiment>.json at the repo root "
        "(perf trajectory; hot-path experiments only)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help="for 'compare': allowed relative regression on gated "
        "metrics (default 0.10)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="for 'compare': baseline JSON path (defaults to the "
        "committed BENCH_<experiment>.json)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="directory to write per-experiment .txt artifacts",
    )
    parser.add_argument(
        "--plot",
        action="store_true",
        help="append ASCII charts for experiments that support them "
        "(currently fig10)",
    )
    return parser


def _compare(args) -> int:
    if args.target is None:
        print("error: compare needs an experiment id", file=sys.stderr)
        return 2
    baseline_path = args.baseline or trajectory_path(args.target)
    if not baseline_path.exists():
        print(
            f"error: no committed baseline at {baseline_path}; generate "
            f"one with 'python -m repro.bench {args.target} --emit-json'",
            file=sys.stderr,
        )
        return 2
    baseline = load_trajectory(baseline_path)
    try:
        current = collect_metrics(args.target, quick=args.quick)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    problems = compare_metrics(
        current, baseline, threshold=args.threshold
    )
    gated = baseline.get("gated", [])
    for name in gated:
        cur = current["metrics"].get(name)
        base = baseline["metrics"].get(name)
        print(f"{args.target}.{name}: current={cur} baseline={base}")
    if problems:
        for line in problems:
            print(f"REGRESSION {args.target}.{line}", file=sys.stderr)
        return 1
    print(
        f"compare {args.target}: {len(gated)} gated metric(s) within "
        f"{args.threshold:.0%} of baseline"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = _parser().parse_args(argv)
    if args.experiment == "list":
        for name in sorted(EXPERIMENTS):
            print(name)
        return 0
    if args.experiment == "compare":
        return _compare(args)
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
    for name in names:
        try:
            tables = run_experiment(name, quick=args.quick)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        text = "\n".join(render_table(t) for t in tables)
        if args.plot and name == "fig10":
            from repro.bench.registry import fig10_chart

            charts = [fig10_chart("pc"), fig10_chart("mobile", m=4096)]
            text = text + "\n" + "\n".join(charts)
        print(text)
        if args.out is not None:
            (args.out / f"{name}.txt").write_text(text)
        if args.emit_json:
            try:
                path = write_trajectory(name, quick=args.quick)
            except ValueError:
                print(f"(no trajectory collector for {name}; JSON skipped)")
            else:
                print(f"wrote {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
