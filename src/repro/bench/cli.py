"""Command line for the experiment harness.

Usage::

    python -m repro.bench list
    python -m repro.bench table4
    python -m repro.bench all --quick --out results/

``all`` runs every registered experiment; ``--out`` additionally writes
one ``<experiment>.txt`` artifact per experiment.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.bench.registry import EXPERIMENTS, run_experiment
from repro.bench.report import render_table

__all__ = ["main"]


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Regenerate the BiQGEMM paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        help="experiment id, 'all', or 'list' "
        f"(ids: {', '.join(sorted(EXPERIMENTS))})",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shrink sweeps for a fast smoke run",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="directory to write per-experiment .txt artifacts",
    )
    parser.add_argument(
        "--plot",
        action="store_true",
        help="append ASCII charts for experiments that support them "
        "(currently fig10)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = _parser().parse_args(argv)
    if args.experiment == "list":
        for name in sorted(EXPERIMENTS):
            print(name)
        return 0
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
    for name in names:
        try:
            tables = run_experiment(name, quick=args.quick)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        text = "\n".join(render_table(t) for t in tables)
        if args.plot and name == "fig10":
            from repro.bench.registry import fig10_chart

            charts = [fig10_chart("pc"), fig10_chart("mobile", m=4096)]
            text = text + "\n" + "\n".join(charts)
        print(text)
        if args.out is not None:
            (args.out / f"{name}.txt").write_text(text)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
