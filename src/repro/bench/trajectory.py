"""Persisted performance trajectory: ``BENCH_<experiment>.json``.

The experiment registry renders human tables; this module distils the
hot-path experiments into small JSON metric files committed at the repo
root, so every PR leaves a machine-diffable perf record and CI can fail
on regressions instead of trusting prose:

- ``python -m repro.bench <experiment> --emit-json`` writes
  ``BENCH_<experiment>.json`` (p50/p95 latency, request rate,
  allocation-per-call, modelled crossover batch -- whatever the
  experiment's collector measures);
- ``python -m repro.bench compare <experiment>`` re-measures and diffs
  against the committed baseline, failing on regressions beyond a
  noise-aware threshold.

Only *gated* metrics fail a compare: host-portable ratios (speedups,
identity bits, allocation counters) rather than absolute wall-clock,
which moves with the runner.  Absolute numbers are still recorded for
the trajectory.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable

__all__ = [
    "GATED_METRICS",
    "collect_metrics",
    "compare_metrics",
    "load_trajectory",
    "metric_direction",
    "trajectory_path",
    "write_trajectory",
]

SCHEMA_VERSION = 1

# src/repro/bench/trajectory.py -> repository root.
_REPO_ROOT = Path(__file__).resolve().parents[3]

#: Metrics a ``compare`` run gates on, per experiment.  Chosen for
#: host-portability: ratios of two kernels measured back-to-back on the
#: same machine, bit-identity flags, and allocation-event counts are
#: stable across runners; absolute microseconds are not.
GATED_METRICS: dict[str, tuple[str, ...]] = {
    "steady_state": ("engine_alloc_events", "alloc_ratio_b1"),
    "compiled_kernels": (
        "speedup_vs_biqgemm_b1",
        "speedup_vs_biqgemm_b2",
        "identical_b1",
        "identical_b2",
    ),
    "decode": ("speedup_cached_len256", "identical_len256"),
    # The always-on tier's cost, as a host-portable ratio of two p50s
    # measured back-to-back (profiled / off).  Baseline ~1.0; compare
    # fails when the profiler starts taxing the hot path.
    "obs_overhead": ("profiler_cost_ratio",),
    # The robustness contract as boolean flags (1.0 = held): every
    # request served bit-identically with zero errors, both in steady
    # state and with a worker SIGKILLed mid-load.  Flags, not req/s:
    # absolute cluster throughput moves with core count.
    "serve_cluster": ("cluster_zero_errors", "killed_worker_zero_errors"),
}


def trajectory_path(experiment: str, root: Path | None = None) -> Path:
    """Where ``BENCH_<experiment>.json`` lives (the repo root)."""
    return (root if root is not None else _REPO_ROOT) / (
        f"BENCH_{experiment}.json"
    )


def metric_direction(name: str) -> str | None:
    """``"lower"`` / ``"higher"`` = which way is better; None = untracked.

    Convention by suffix: times and allocation footprints want to fall;
    rates, speedups and identity flags want to rise.
    """
    if name.endswith(("_ms", "_us", "_s", "_bytes", "_events", "_ratio")) or (
        "alloc_ratio" in name
    ):
        return "lower"
    if (
        name.startswith(("speedup_", "identical_"))
        or name.endswith(("_per_s", "_reduction", "_hit_rate",
                          "_zero_errors"))
    ):
        return "higher"
    return None


# ----------------------------------------------------------------------
# collectors
# ----------------------------------------------------------------------
def _steady_state_metrics(quick: bool) -> dict[str, float]:
    from repro.bench.registry import steady_state_rows

    rows = steady_state_rows(quick)
    metrics: dict[str, float] = {}
    for row in rows:
        if row["kind"] == "model":
            b = row["batch"]
            metrics[f"on_p50_b{b}_ms"] = row["on_p50_ms"]
            metrics[f"off_p50_b{b}_ms"] = row["off_p50_ms"]
            metrics[f"p50_reduction_b{b}"] = row["p50_reduction"]
            metrics[f"alloc_on_b{b}_bytes"] = float(row["on_alloc_bytes"])
            metrics[f"req_per_s_b{b}"] = 1e3 / row["on_p50_ms"]
            if b == 1:
                # Arena effectiveness as a host-portable ratio: warm
                # arenas must keep the transient footprint well under
                # the allocating path's.
                metrics["alloc_ratio_b1"] = row["on_alloc_bytes"] / max(
                    1, row["off_alloc_bytes"]
                )
        elif row["kind"] == "engine_flat":
            metrics["engine_alloc_events"] = float(row["alloc_events"])
    return metrics


def _compiled_kernels_metrics(quick: bool) -> dict[str, float]:
    from repro.bench.registry import compiled_kernels_rows

    rows = compiled_kernels_rows(quick)
    metrics: dict[str, float] = {}
    for row in rows:
        if row["kind"] == "step":
            b = row["batch"]
            metrics[f"compiled_p50_b{b}_us"] = row["compiled_p50_us"]
            metrics[f"compiled_p95_b{b}_us"] = row["compiled_p95_us"]
            metrics[f"biqgemm_p50_b{b}_us"] = row["biqgemm_p50_us"]
            metrics[f"biqgemm_fast_p50_b{b}_us"] = row["biqgemm_fast_p50_us"]
            metrics[f"dense_p50_b{b}_us"] = row["dense_p50_us"]
            metrics[f"speedup_vs_biqgemm_b{b}"] = row["speedup_vs_biqgemm"]
            metrics[f"speedup_vs_best_b{b}"] = row["speedup_vs_best"]
            metrics[f"req_per_s_b{b}"] = row["req_per_s"]
            metrics[f"alloc_per_call_b{b}_bytes"] = float(
                row["alloc_per_call_bytes"]
            )
            metrics[f"identical_b{b}"] = 1.0 if row["identical"] else 0.0
        elif row["kind"] == "crossover":
            # None = the plan never leaves compiled up to batch 1024.
            metrics["crossover_batch"] = float(row["batch"] or 0)
    return metrics


def _decode_metrics(quick: bool) -> dict[str, float]:
    from repro.bench.registry import decode_rows

    metrics: dict[str, float] = {}
    for row in decode_rows(quick):
        if row["kind"] == "decode":
            n = row["length"]
            metrics[f"cached_tok_per_s_len{n}"] = row["cached_tok_per_s"]
            metrics[f"recompute_tok_per_s_len{n}"] = row[
                "recompute_tok_per_s"
            ]
            metrics[f"speedup_cached_len{n}"] = row["speedup"]
            metrics[f"identical_len{n}"] = 1.0 if row["identical"] else 0.0
        elif row["kind"] == "scheduler":
            s = row["sequences"]
            metrics[f"sched_tok_per_s_s{s}"] = row["tok_per_s"]
            metrics[f"coalescing_s{s}"] = row["coalescing_ratio"]
    return metrics


def _obs_overhead_metrics(quick: bool) -> dict[str, float]:
    from repro.bench.registry import obs_overhead_rows, profiler_cost

    metrics: dict[str, float] = {}
    for row in obs_overhead_rows(quick):
        b = row["batch"]
        metrics[f"off_p50_b{b}_ms"] = row["off_p50_ms"]
        metrics[f"traced_p50_b{b}_ms"] = row["on_p50_ms"]
        metrics[f"profiled_p50_b{b}_ms"] = row["profiled_p50_ms"]
    # The gated ratio comes from a dedicated min-of-N best-of-attempts
    # measurement, not the p50 rows above: p50 over short quick runs
    # jitters far beyond the ~1% signal being gated.
    cost = profiler_cost(quick)
    metrics["profiler_cost_ratio"] = cost["ratio"]
    metrics["profiler_off_min_ms"] = cost["off_min_ms"]
    metrics["profiler_on_min_ms"] = cost["profiled_min_ms"]
    return metrics


def _serve_cluster_metrics(quick: bool) -> dict[str, float]:
    from repro.bench.registry import serve_cluster_rows

    metrics: dict[str, float] = {}
    for row in serve_cluster_rows(quick):
        clean = row["errors"] == 0 and row["mismatches"] == 0
        if row["kind"] == "cluster":
            metrics["cluster_req_per_s"] = row["req_per_s"]
            metrics["cluster_zero_errors"] = 1.0 if clean else 0.0
        elif row["kind"] == "killed":
            metrics["killed_req_per_s"] = row["req_per_s"]
            metrics["killed_worker_zero_errors"] = 1.0 if clean else 0.0
            metrics["killed_worker_deaths"] = float(row["deaths"])
            metrics["killed_worker_redelivered"] = float(
                row["redelivered"]
            )
        elif row["kind"] == "scaling":
            # Present only on >= 4-core hosts (the collector skips the
            # phase on narrow machines); compare_metrics skips names
            # absent from either side, so records stay comparable
            # across hosts of different widths.
            metrics["scaling_req_per_s_w4"] = row["req_per_s"]
            metrics["scaling_vs_1worker"] = row["scaling_vs_1worker"]
    return metrics


_COLLECTORS: dict[str, Callable[[bool], dict[str, float]]] = {
    "steady_state": _steady_state_metrics,
    "compiled_kernels": _compiled_kernels_metrics,
    "decode": _decode_metrics,
    "obs_overhead": _obs_overhead_metrics,
    "serve_cluster": _serve_cluster_metrics,
}


def collect_metrics(
    experiment: str, *, quick: bool = False, samples: int = 1
) -> dict:
    """Measure one experiment's trajectory record (JSON-ready dict).

    With ``samples > 1`` the collector runs repeatedly: each metric is
    the per-name median across runs, and gated metrics additionally get
    a recorded relative ``noise`` (max-min spread over the median).
    Baselines written with several samples let :func:`compare_metrics`
    widen its threshold to the measurement's own observed noise instead
    of failing on run-to-run jitter.
    """
    collector = _COLLECTORS.get(experiment)
    if collector is None:
        raise ValueError(
            f"no trajectory collector for {experiment!r}; available: "
            f"{sorted(_COLLECTORS)}"
        )
    runs = [
        collect_raw(experiment, quick=quick) for _ in range(max(1, samples))
    ]
    metrics: dict[str, float] = {}
    for name in runs[0]:
        values = sorted(run[name] for run in runs if name in run)
        metrics[name] = values[len(values) // 2]
    gated = list(GATED_METRICS.get(experiment, ()))
    noise: dict[str, float] = {}
    if len(runs) > 1:
        for name in gated:
            values = [run[name] for run in runs if name in run]
            if not values or metrics.get(name) in (None, 0.0):
                continue
            spread = (max(values) - min(values)) / abs(metrics[name])
            noise[name] = round(spread, 6)
    record = {
        "schema": SCHEMA_VERSION,
        "experiment": experiment,
        "quick": bool(quick),
        "gated": gated,
        "metrics": metrics,
    }
    if noise:
        record["noise"] = noise
    return record


def collect_raw(experiment: str, *, quick: bool = False) -> dict[str, float]:
    """Just the metric mapping (see :func:`collect_metrics`)."""
    return {
        k: round(float(v), 6)
        for k, v in _COLLECTORS[experiment](quick).items()
    }


def write_trajectory(
    experiment: str,
    *,
    quick: bool = False,
    samples: int = 3,
    root: Path | None = None,
) -> Path:
    """Measure and persist ``BENCH_<experiment>.json``; returns the path.

    Defaults to three collection samples so the committed baseline
    carries an honest noise estimate for :func:`compare_metrics`.
    """
    record = collect_metrics(experiment, quick=quick, samples=samples)
    path = trajectory_path(experiment, root)
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return path


def load_trajectory(path: Path) -> dict:
    """Read and validate one committed trajectory file."""
    data = json.loads(Path(path).read_text())
    if data.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: unsupported trajectory schema {data.get('schema')!r}"
        )
    return data


def compare_metrics(
    current: dict, baseline: dict, *, threshold: float = 0.10
) -> list[str]:
    """Regression lines for gated metrics of *current* vs *baseline*.

    Empty list = no regression.  A gated metric regresses when it moves
    in its bad direction by more than the allowed band; baselines of
    exactly zero (allocation events) regress on any increase.  The band
    is noise-aware: ``max(threshold, 2 * noise[name])`` where ``noise``
    is the relative spread the baseline recorded across its own
    collection samples -- a metric that jitters 15% run-to-run on the
    baseline host is not failed for a 12% dip.  Metrics absent from
    either side are skipped -- comparing a quick baseline against a
    full run compares only the shared names.
    """
    cur = current.get("metrics", {})
    base = baseline.get("metrics", {})
    noise = baseline.get("noise", {})
    gated = baseline.get("gated") or GATED_METRICS.get(
        baseline.get("experiment", ""), ()
    )
    problems: list[str] = []
    for name in gated:
        if name not in cur or name not in base:
            continue
        c, b = float(cur[name]), float(base[name])
        direction = metric_direction(name)
        if direction is None:
            continue
        if b == 0.0:
            if direction == "lower" and c > 0.0:
                problems.append(
                    f"{name}: {c:g} regressed from a zero baseline"
                )
            continue
        allowed = max(threshold, 2.0 * float(noise.get(name, 0.0)))
        change = (c - b) / abs(b)
        bad = change > allowed if direction == "lower" else (
            -change > allowed
        )
        if bad:
            problems.append(
                f"{name}: {c:g} vs baseline {b:g} "
                f"({change:+.1%}, allowed {allowed:.0%} "
                f"{'increase' if direction == 'lower' else 'drop'})"
            )
    return problems
