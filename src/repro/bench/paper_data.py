"""Reference numbers transcribed from the paper, for side-by-side tables.

Keeping the published values next to our regenerated ones makes every
bench self-auditing: the harness prints paper vs model/measured in one
grid, and EXPERIMENTS.md quotes the same source.
"""

from __future__ import annotations

__all__ = ["TABLE1_PAPER", "TABLE4_PAPER", "TABLE2_PAPER_TOTALS"]

# Table I: (reference, scheme, weight bits, activation bits, BLEU, delta)
TABLE1_PAPER: tuple[tuple[str, str, int, int, float, float], ...] = (
    ("[16]", "baseline", 32, 32, 27.68, 0.0),
    ("[16]", "uniform", 8, 8, 27.30, -0.22),
    ("[47]", "baseline", 32, 32, 26.46, 0.0),
    ("[47]", "uniform", 8, 8, 26.38, -0.80),
    ("[47]", "uniform", 6, 6, 26.98, +0.52),
    ("[47]", "uniform", 4, 4, 18.32, -8.14),
    ("[48]", "baseline", 32, 32, 25.8, 0.0),
    ("[48]", "bcq-greedy", 4, 32, 25.5, -0.3),
    ("[48]", "bcq-greedy", 3, 32, 25.3, -0.5),
    ("[48]", "bcq-greedy", 2, 32, 23.9, -1.9),
    ("[48]", "bcq-greedy", 1, 32, 0.4, -25.4),
)

# Table IV: {(n, batch): (biqgemm_us, kgpu_us, cublas_us, xnor_us)} on V100,
# square n-by-n weights, 1-bit quantization.
TABLE4_PAPER: dict[tuple[int, int], tuple[float, float, float, float]] = {
    (512, 1): (4, 22, 12, 18),
    (512, 32): (11, 24, 20, 18),
    (512, 128): (30, 39, 25, 19),
    (512, 256): (58, 63, 26, 19),
    (1024, 1): (4, 36, 14, 18),
    (1024, 32): (20, 57, 27, 19),
    (1024, 128): (70, 120, 45, 21),
    (1024, 256): (135, 204, 64, 24),
    (2048, 1): (5, 93, 31, 19),
    (2048, 32): (47, 153, 52, 23),
    (2048, 128): (175, 366, 109, 29),
    (2048, 256): (330, 661, 179, 40),
    (4096, 1): (7, 213, 90, 23),
    (4096, 32): (130, 614, 130, 34),
    (4096, 128): (528, 1396, 339, 64),
    (4096, 256): (1005, 2516, 594, 109),
}

# Table II: {(w_bits, a_bits): total_mb} as printed in the paper.
TABLE2_PAPER_TOTALS: dict[tuple[int, int], float] = {
    (32, 32): 1.122,
    (8, 8): 0.308,
    (6, 6): 0.240,
    (4, 4): 0.173,
    (4, 32): 0.205,
    (3, 32): 0.172,
    (2, 32): 0.139,
}
