"""ASCII series plots for the experiment harness.

The paper's Fig. 10 is a bar/line chart; in a terminal-only environment
the closest faithful rendering is a character plot.  Used by the CLI's
``fig10`` output and by ``examples/cost_model_explorer.py``.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["render_series"]

_MARKERS = "ox+*#@%&"


def render_series(
    title: str,
    x_labels: Sequence[object],
    series: Mapping[str, Sequence[float]],
    *,
    height: int = 12,
    y_label: str = "",
) -> str:
    """Render named numeric series against shared x positions.

    Parameters
    ----------
    title:
        Chart heading.
    x_labels:
        One label per x position (prints under the axis).
    series:
        Ordered mapping name -> values; all must match ``len(x_labels)``.
    height:
        Plot rows (y resolution).
    y_label:
        Optional y-axis annotation.

    Returns the chart as a multi-line string.
    """
    if height < 2:
        raise ValueError("height must be >= 2")
    if not series:
        raise ValueError("series must be non-empty")
    n = len(x_labels)
    if n == 0:
        raise ValueError("x_labels must be non-empty")
    for name, values in series.items():
        if len(values) != n:
            raise ValueError(
                f"series {name!r} has {len(values)} values, expected {n}"
            )
    all_values = [v for values in series.values() for v in values]
    lo = min(all_values)
    hi = max(all_values)
    span = hi - lo if hi > lo else 1.0

    col_width = 6
    grid = [[" "] * (n * col_width) for _ in range(height)]
    for idx, (name, values) in enumerate(series.items()):
        marker = _MARKERS[idx % len(_MARKERS)]
        for xi, v in enumerate(values):
            row = int(round((v - lo) / span * (height - 1)))
            grid[height - 1 - row][xi * col_width + col_width // 2] = marker

    lines = [title]
    for r, row in enumerate(grid):
        y_val = hi - (hi - lo) * r / (height - 1)
        lines.append(f"{y_val:9.3g} |" + "".join(row))
    lines.append(" " * 10 + "+" + "-" * (n * col_width))
    xticks = " " * 11
    for lbl in x_labels:
        xticks += str(lbl).center(col_width)
    lines.append(xticks)
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} = {name}"
        for i, name in enumerate(series)
    )
    lines.append(f"  legend: {legend}")
    if y_label:
        lines.append(f"  y: {y_label}")
    return "\n".join(lines) + "\n"
