"""Experiment harness regenerating every table and figure of the paper.

- :mod:`repro.bench.report` -- ASCII table rendering;
- :mod:`repro.bench.runner` -- timing helpers (median-of-k wall clock);
- :mod:`repro.bench.registry` -- one function per paper artifact
  (``table1``, ``table2``, ``table3``, ``table4``, ``fig8``, ``fig9``,
  ``fig10``) plus the ablations DESIGN.md calls out (``mu``,
  ``lut_build``, ``tiling``, ``threads``);
- :mod:`repro.bench.cli` -- ``python -m repro.bench <experiment>``.

Every experiment returns :class:`~repro.bench.report.Table` objects so
the benchmark suite, the CLI and EXPERIMENTS.md all render identical
content.
"""

from repro.bench.report import Table, render_table, format_seconds
from repro.bench.runner import time_callable
from repro.bench.registry import EXPERIMENTS, run_experiment

__all__ = [
    "Table",
    "render_table",
    "format_seconds",
    "time_callable",
    "EXPERIMENTS",
    "run_experiment",
]
