"""Shared-input engine groups: build lookup tables once, query many.

The paper's key economic argument (Section III-C) is that table
construction is amortized by the query volume ``m * groups * b``.  The
same argument extends *across weight matrices*: the Q, K and V
projections of an attention block -- and the four gate blocks of an
LSTM -- multiply the **same activation matrix**, so their lookup tables
are identical.  :class:`BiQGemmGroup` exploits that: one build phase
(Algorithm 1) serves every member engine's query phase, cutting the
build cost by the group size.  This is a natural extension the paper's
structure enables; the ablation bench
(`benchmarks/bench_ablation_shared.py`) quantifies the saving.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.kernel import BiQGemm, _phase
from repro.core.lut import reshape_input
from repro.core.profiling import PhaseProfiler
from repro.core.tiling import TileConfig, choose_tiles

__all__ = ["BiQGemmGroup"]


class BiQGemmGroup:
    """A set of BiQGEMM engines that always multiply the same input.

    All members must agree on the inner dimension ``n`` and the LUT-unit
    ``mu`` (tables are a function of ``(x, mu)`` only, so these are the
    sharing preconditions).
    """

    def __init__(self, engines: Sequence[BiQGemm]):
        if not engines:
            raise ValueError("engine group must be non-empty")
        for e in engines:
            if not isinstance(e, BiQGemm):
                raise TypeError(
                    f"group members must be BiQGemm, got {type(e).__name__}"
                )
        n = engines[0].shape[1]
        mu = engines[0].mu
        for e in engines[1:]:
            if e.shape[1] != n:
                raise ValueError(
                    f"all engines must share n={n}, got {e.shape[1]}"
                )
            if e.mu != mu:
                raise ValueError(
                    f"all engines must share mu={mu}, got {e.mu}"
                )
        self._engines = list(engines)
        self._n = n
        self._mu = mu

    @classmethod
    def from_floats(
        cls,
        weights: Sequence[np.ndarray],
        *,
        bits: int,
        mu: int = 8,
        method: str = "greedy",
    ) -> "BiQGemmGroup":
        """Quantize and compile several weight matrices as one group."""
        return cls(
            [
                BiQGemm.from_float(w, bits=bits, mu=mu, method=method)
                for w in weights
            ]
        )

    @property
    def engines(self) -> list[BiQGemm]:
        """The member engines, in construction order."""
        return list(self._engines)

    @property
    def n(self) -> int:
        """Shared inner dimension."""
        return self._n

    @property
    def mu(self) -> int:
        """Shared LUT-unit."""
        return self._mu

    def matmul_shared(
        self,
        x: np.ndarray,
        *,
        builder: str = "auto",
        tiles: TileConfig | None = None,
        query_impl: str = "auto",
        profiler: PhaseProfiler | None = None,
    ) -> list[np.ndarray]:
        """Multiply every member by *x*, building each table exactly once.

        Equivalent to ``[e.matmul(x) for e in group.engines]`` but with a
        single build phase; returns the outputs in member order.  The
        tile schedule stays LUT-stationary: per group tile, the tables
        are built once and then streamed against every member's keys.
        """
        with _phase(profiler, "replace"):
            arr = np.asarray(x)
            vector_in = arr.ndim == 1
            if vector_in:
                arr = arr[:, None]
            if arr.ndim != 2:
                raise ValueError(f"x must be 1-D or 2-D, got shape {arr.shape}")
            if arr.shape[0] != self._n:
                raise ValueError(
                    f"x has {arr.shape[0]} rows, group expects n={self._n}"
                )
            if not np.issubdtype(arr.dtype, np.floating):
                arr = arr.astype(np.float64)
            xhat = reshape_input(arr, self._mu)
        batch = arr.shape[1]
        groups = xhat.shape[0]
        dtype = arr.dtype
        max_m = max(e.shape[0] for e in self._engines)
        if tiles is None:
            tiles = choose_tiles(
                max_m, groups, self._mu, batch, itemsize=dtype.itemsize
            )
        build_fn = self._engines[0]._resolve_builder(builder, batch)

        outputs = [
            np.zeros((e.shape[0], batch), dtype=dtype) for e in self._engines
        ]
        for g0 in range(0, groups, tiles.tile_g):
            g_sl = slice(g0, min(g0 + tiles.tile_g, groups))
            with _phase(profiler, "build"):
                q_tile = build_fn(xhat[g_sl])
            for engine, y in zip(self._engines, outputs):
                m = engine.shape[0]
                alphas = engine.alphas.astype(dtype, copy=False)
                keys = engine.key_matrix.keys
                for r0 in range(0, m, tiles.tile_m):
                    r_sl = slice(r0, min(r0 + tiles.tile_m, m))
                    with _phase(profiler, "query"):
                        engine._query_tile(
                            y, q_tile, keys, alphas, r_sl, g_sl, query_impl
                        )
        if vector_in:
            return [y[:, 0] for y in outputs]
        return outputs

    def build_savings(self, batch: int) -> dict[str, int]:
        """Build-phase operation counts: shared vs separate (Eq. 6).

        Separate engines each rebuild the same tables; the group builds
        once.  Returns both counts so benches can report the ratio
        (equal to the group size).
        """
        from repro.core.lut import dp_flop_count

        groups = -(-self._n // self._mu)
        once = dp_flop_count(self._mu, groups, batch)
        return {
            "shared_build_adds": once,
            "separate_build_adds": once * len(self._engines),
        }

    def __len__(self) -> int:
        return len(self._engines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ms = [e.shape[0] for e in self._engines]
        return f"BiQGemmGroup(n={self._n}, mu={self._mu}, m={ms})"
