"""Persist compiled matmul engines.

Deployment per the paper's footnote 3: "matrix K instead of B can be
loaded in advance into the system, since the weight matrices are fixed
during inference" -- i.e. what ships is the compiled artifact, not
float weights.  This module serializes exactly that state (``.npz``,
compressed) for *any* engine registered in :mod:`repro.engine`, so an
engine can be compiled once offline and reloaded by the inference
process.

Two on-disk formats coexist:

- **version 1** -- the historical BiQGEMM-only layout (keys, alphas,
  mu, n).  Still written for :class:`~repro.core.kernel.BiQGemm`
  engines, so artifacts produced by earlier releases keep loading and
  new BiQGEMM artifacts stay readable by them.
- **version 2** -- the registry layout: an ``engine_kind`` field names
  the backend, and the remaining arrays are whatever that backend's
  :class:`~repro.engine.registry.EngineEntry` export hook emitted; the
  matching restore hook rebuilds the engine on load.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.core.kernel import BiQGemm
from repro.core.keys import KeyMatrix

__all__ = ["save_engine", "load_engine"]

_FORMAT_VERSION = 1
_REGISTRY_FORMAT_VERSION = 2


def save_engine(engine, path: str | Path) -> None:
    """Write an engine's compiled state to *path* (``.npz``).

    :class:`~repro.core.kernel.BiQGemm` uses the version-1 layout;
    every other registered engine goes through its registry export
    hook into the version-2 layout.  Engines that are neither raise
    ``TypeError``.
    """
    path = Path(path)
    if isinstance(engine, BiQGemm):
        np.savez_compressed(
            path,
            format_version=np.int64(_FORMAT_VERSION),
            keys=engine.key_matrix.keys,
            alphas=engine.alphas,
            mu=np.int64(engine.mu),
            n=np.int64(engine.shape[1]),
        )
        return
    from repro.engine import engine_entry

    kind = getattr(engine, "backend_name", None)
    if kind is None:
        raise TypeError(
            f"cannot serialize {type(engine).__name__}: not a BiQGemm and "
            "not a registered engine (no backend_name)"
        )
    entry = engine_entry(kind)
    if entry.export is None:
        raise TypeError(f"backend {kind!r} does not support serialization")
    state = entry.export(engine)
    np.savez_compressed(
        path,
        format_version=np.int64(_REGISTRY_FORMAT_VERSION),
        engine_kind=np.bytes_(kind.encode("ascii")),
        **state,
    )


def load_engine(path: str | Path):
    """Reconstruct an engine saved by :func:`save_engine`.

    Validates the format version and the internal consistency of the
    stored arrays (shape/range checks run in the engine constructors),
    so a truncated or foreign file fails loudly.  Version-1 files load
    as :class:`~repro.core.kernel.BiQGemm`; version-2 files load as
    whatever backend their ``engine_kind`` names, provided it is
    registered in this process.
    """
    path = Path(path)
    if not path.exists():
        # np.savez appends .npz when missing; mirror that on load.
        alt = path.with_name(path.name + ".npz")
        if alt.exists():
            path = alt
        else:
            raise FileNotFoundError(f"no engine file at {path}")
    try:
        with np.load(path) as data:
            version = int(data["format_version"])
            if version == _FORMAT_VERSION:
                km = KeyMatrix(
                    keys=data["keys"], mu=int(data["mu"]), n=int(data["n"])
                )
                return BiQGemm(km, alphas=data["alphas"])
            if version == _REGISTRY_FORMAT_VERSION:
                from repro.engine import engine_entry

                kind = bytes(data["engine_kind"].item()).decode("ascii")
                entry = engine_entry(kind)
                if entry.restore is None:
                    raise ValueError(
                        f"backend {kind!r} does not support deserialization"
                    )
                state = {
                    name: data[name]
                    for name in data.files
                    if name not in ("format_version", "engine_kind")
                }
                return entry.restore(state)
            raise ValueError(
                f"unsupported engine format version {version} (expected "
                f"{_FORMAT_VERSION} or {_REGISTRY_FORMAT_VERSION})"
            )
    except KeyError as exc:
        raise ValueError(
            f"{path} is not a serialized engine file (missing field {exc})"
        ) from exc
