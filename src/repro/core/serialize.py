"""Persist compiled matmul engines and whole-model artifacts.

Deployment per the paper's footnote 3: "matrix K instead of B can be
loaded in advance into the system, since the weight matrices are fixed
during inference" -- i.e. what ships is the compiled artifact, not
float weights.  This module serializes exactly that state (``.npz``,
compressed) for *any* engine registered in :mod:`repro.engine`, so an
engine can be compiled once offline and reloaded by the inference
process.

Three on-disk formats coexist:

- **version 1** -- the historical BiQGEMM-only layout (keys, alphas,
  mu, n).  Still written for :class:`~repro.core.kernel.BiQGemm`
  engines, so artifacts produced by earlier releases keep loading and
  new BiQGEMM artifacts stay readable by them.
- **version 2** -- the registry layout: an ``engine_kind`` field names
  the backend, and the remaining arrays are whatever that backend's
  :class:`~repro.engine.registry.EngineEntry` export hook emitted; the
  matching restore hook rebuilds the engine on load.
- **version 3** -- the whole-model layout written by
  :mod:`repro.api.artifact`: a JSON ``manifest`` (config, structure,
  per-layer plans) plus ``layer<i>.<field>`` arrays holding each
  layer's engine payload.  This module owns only the container
  (:func:`save_model_artifact` / :func:`load_model_artifact`, with
  manifest validation); the model semantics live in
  :func:`repro.api.save` / :func:`repro.api.load`.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.kernel import BiQGemm
from repro.core.keys import KeyMatrix

__all__ = [
    "load_engine",
    "load_model_artifact",
    "load_model_manifest",
    "pack_model_into",
    "packed_model_size",
    "save_engine",
    "save_model_artifact",
    "unpack_model_from",
]

_FORMAT_VERSION = 1
_REGISTRY_FORMAT_VERSION = 2
_MODEL_FORMAT_VERSION = 3

_MANIFEST_REQUIRED_FIELDS = ("config", "structure", "layers", "batch_hint")


def save_engine(engine, path: str | Path) -> None:
    """Write an engine's compiled state to *path* (``.npz``).

    :class:`~repro.core.kernel.BiQGemm` uses the version-1 layout;
    every other registered engine goes through its registry export
    hook into the version-2 layout.  Engines that are neither raise
    ``TypeError``.
    """
    path = Path(path)
    if isinstance(engine, BiQGemm):
        np.savez_compressed(
            path,
            format_version=np.int64(_FORMAT_VERSION),
            keys=engine.key_matrix.keys,
            alphas=engine.alphas,
            mu=np.int64(engine.mu),
            n=np.int64(engine.shape[1]),
            # Execution-mode flag, not weight state: layer/serving
            # engines run batch-invariant and a reload must keep
            # producing bit-identical outputs.  Optional on load, so
            # pre-flag files keep working.
            batch_invariant=np.bool_(engine.batch_invariant),
        )
        return
    from repro.engine import engine_entry

    kind = getattr(engine, "backend_name", None)
    if kind is None:
        raise TypeError(
            f"cannot serialize {type(engine).__name__}: not a BiQGemm and "
            "not a registered engine (no backend_name)"
        )
    entry = engine_entry(kind)
    if entry.export is None:
        raise TypeError(f"backend {kind!r} does not support serialization")
    state = entry.export(engine)
    np.savez_compressed(
        path,
        format_version=np.int64(_REGISTRY_FORMAT_VERSION),
        engine_kind=np.bytes_(kind.encode("ascii")),
        **state,
    )


def load_engine(path: str | Path):
    """Reconstruct an engine saved by :func:`save_engine`.

    Validates the format version and the internal consistency of the
    stored arrays (shape/range checks run in the engine constructors),
    so a truncated or foreign file fails loudly.  Version-1 files load
    as :class:`~repro.core.kernel.BiQGemm`; version-2 files load as
    whatever backend their ``engine_kind`` names, provided it is
    registered in this process.
    """
    path = Path(path)
    if not path.exists():
        # np.savez appends .npz when missing; mirror that on load.
        alt = path.with_name(path.name + ".npz")
        if alt.exists():
            path = alt
        else:
            raise FileNotFoundError(f"no engine file at {path}")
    try:
        with np.load(path) as data:
            version = int(data["format_version"])
            if version == _FORMAT_VERSION:
                km = KeyMatrix(
                    keys=data["keys"], mu=int(data["mu"]), n=int(data["n"])
                )
                engine = BiQGemm(km, alphas=data["alphas"])
                if "batch_invariant" in data.files:
                    engine.batch_invariant = bool(data["batch_invariant"])
                return engine
            if version == _REGISTRY_FORMAT_VERSION:
                from repro.engine import engine_entry

                kind = bytes(data["engine_kind"].item()).decode("ascii")
                entry = engine_entry(kind)
                if entry.restore is None:
                    raise ValueError(
                        f"backend {kind!r} does not support deserialization"
                    )
                state = {
                    name: data[name]
                    for name in data.files
                    if name not in ("format_version", "engine_kind")
                }
                return entry.restore(state)
            if version == _MODEL_FORMAT_VERSION:
                raise ValueError(
                    f"{path} is a whole-model artifact (format version "
                    f"{version}); load it with repro.api.load"
                )
            raise ValueError(
                f"unsupported engine format version {version} (expected "
                f"{_FORMAT_VERSION} or {_REGISTRY_FORMAT_VERSION})"
            )
    except KeyError as exc:
        raise ValueError(
            f"{path} is not a serialized engine file (missing field {exc})"
        ) from exc


# ----------------------------------------------------------------------
# version 3: whole-model artifacts
# ----------------------------------------------------------------------
def _resolve_artifact_path(path: str | Path) -> Path:
    path = Path(path)
    if path.exists():
        return path
    # np.savez appends .npz when missing; mirror that on load.
    alt = path.with_name(path.name + ".npz")
    if alt.exists():
        return alt
    raise FileNotFoundError(f"no model artifact at {path}")


def _validate_manifest(manifest) -> dict:
    if not isinstance(manifest, dict):
        raise ValueError(
            f"corrupted model manifest: expected a JSON object, got "
            f"{type(manifest).__name__}"
        )
    missing = [f for f in _MANIFEST_REQUIRED_FIELDS if f not in manifest]
    if missing:
        raise ValueError(
            f"corrupted model manifest: missing field(s) {missing}"
        )
    layers = manifest["layers"]
    if not isinstance(layers, list) or not layers:
        raise ValueError(
            "corrupted model manifest: 'layers' must be a non-empty list"
        )
    for i, entry in enumerate(layers):
        if not isinstance(entry, dict):
            raise ValueError(
                f"corrupted model manifest: layer entry {i} is not an object"
            )
        for key in ("path", "backend", "m", "n", "spec"):
            if key not in entry:
                raise ValueError(
                    f"corrupted model manifest: layer entry {i} is missing "
                    f"{key!r}"
                )
    return manifest


def save_model_artifact(
    path: str | Path,
    *,
    manifest: dict,
    arrays: dict[str, np.ndarray],
) -> None:
    """Write a version-3 whole-model artifact (``.npz``, compressed).

    *manifest* must be JSON-able and carry at least
    ``config/structure/layers/batch_hint``; *arrays* are the per-layer
    engine payloads, keyed ``layer<i>.<field>``.  Validation runs on
    write too, so a malformed manifest never reaches disk.
    """
    _validate_manifest(manifest)
    reserved = {"format_version", "manifest"} & set(arrays)
    if reserved:
        raise ValueError(f"array names collide with reserved fields: {reserved}")
    # No sort_keys: QuantConfig.overrides precedence is declaration
    # order, which a JSON round trip preserves only if we do too.
    blob = json.dumps(manifest).encode("utf-8")
    np.savez_compressed(
        Path(path),
        format_version=np.int64(_MODEL_FORMAT_VERSION),
        manifest=np.frombuffer(blob, dtype=np.uint8),
        **arrays,
    )


def load_model_artifact(
    path: str | Path,
) -> tuple[dict, dict[str, np.ndarray]]:
    """Read a version-3 artifact back as ``(manifest, arrays)``.

    Fails loudly -- wrong format version, non-JSON or structurally
    invalid manifests all raise ``ValueError`` before any engine state
    is touched.
    """
    path = _resolve_artifact_path(path)
    with np.load(path) as data:
        manifest = _read_manifest(data, path)
        arrays = {
            name: data[name]
            for name in data.files
            if name not in ("format_version", "manifest")
        }
    return manifest, arrays


def load_model_manifest(path: str | Path) -> dict:
    """Read only the JSON manifest of a version-3 artifact.

    The cheap peek for registries and serving stores
    (:class:`repro.serve.ModelStore`): config, structure and per-layer
    plans without decompressing any engine payload.  Validation is the
    same as :func:`load_model_artifact`'s.
    """
    path = _resolve_artifact_path(path)
    with np.load(path) as data:
        return _read_manifest(data, path)


def _read_manifest(data, path) -> dict:
    """Shared version check + manifest decode over an open ``.npz``."""
    try:
        version = int(data["format_version"])
    except KeyError as exc:
        raise ValueError(
            f"{path} is not a serialized artifact (missing field {exc})"
        ) from exc
    if version != _MODEL_FORMAT_VERSION:
        raise ValueError(
            f"{path} has format version {version}, not a whole-model "
            f"artifact (version {_MODEL_FORMAT_VERSION}); "
            "single-engine files load with repro.core.serialize."
            "load_engine"
        )
    if "manifest" not in data.files:
        raise ValueError(f"{path}: corrupted model artifact, no manifest")
    try:
        manifest = json.loads(bytes(data["manifest"].tobytes()))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ValueError(
            f"{path}: corrupted model manifest ({exc})"
        ) from exc
    _validate_manifest(manifest)
    return manifest


# ----------------------------------------------------------------------
# packed in-memory layout (shared-memory serving)
# ----------------------------------------------------------------------
# The v3 ``.npz`` container is the *file* format; multi-process serving
# additionally needs the same (manifest, arrays) pair mapped into one
# flat buffer that N worker processes can attach read-only
# (``multiprocessing.shared_memory``).  The layout is deliberately
# dumb: an 8-byte little-endian header length, a JSON header (the
# manifest plus an array table of name/dtype/shape/offset), then each
# array's raw bytes at a 64-byte-aligned offset so every mapped view
# starts cache-line aligned.

_PACK_ALIGN = 64
_PACK_MAGIC = "repro-shm-model"
_PACK_VERSION = 1


def _align(offset: int) -> int:
    return (offset + _PACK_ALIGN - 1) // _PACK_ALIGN * _PACK_ALIGN


def _pack_header(manifest: dict, arrays: dict[str, np.ndarray]):
    """The JSON header + per-array offsets for the packed layout."""
    _validate_manifest(manifest)
    table = []
    offset = 0  # relative to the start of the array region
    prepared: dict[str, np.ndarray] = {}
    for name in sorted(arrays):
        # ascontiguousarray promotes 0-d to 1-d; preserve the original
        # shape so scalar payloads (mu, n) round-trip like the npz path.
        arr = np.asarray(arrays[name])
        if not arr.flags.c_contiguous:
            arr = np.ascontiguousarray(arr)
        prepared[name] = arr
        offset = _align(offset)
        table.append(
            {
                "name": name,
                "dtype": arr.dtype.str,
                "shape": list(arr.shape),
                "offset": offset,
                "nbytes": int(arr.nbytes),
            }
        )
        offset += arr.nbytes
    header = {
        "magic": _PACK_MAGIC,
        "version": _PACK_VERSION,
        "manifest": manifest,
        "arrays": table,
    }
    blob = json.dumps(header).encode("utf-8")
    return blob, table, prepared, offset


def packed_model_size(manifest: dict, arrays: dict[str, np.ndarray]) -> int:
    """Bytes needed to :func:`pack_model_into` this model."""
    blob, _, _, payload = _pack_header(manifest, arrays)
    return _align(8 + len(blob)) + payload


def pack_model_into(
    buf, manifest: dict, arrays: dict[str, np.ndarray]
) -> int:
    """Write the packed model layout into *buf* (a writable buffer).

    Returns the number of bytes written.  *buf* must be at least
    :func:`packed_model_size` long; the manifest is validated exactly
    like the ``.npz`` path, so a malformed model never reaches shared
    memory.
    """
    blob, table, prepared, payload = _pack_header(manifest, arrays)
    base = _align(8 + len(blob))
    total = base + payload
    view = np.frombuffer(buf, dtype=np.uint8, count=total)
    if view.nbytes < total:
        raise ValueError(
            f"buffer holds {view.nbytes} bytes, packed model needs {total}"
        )
    view[:8] = np.frombuffer(
        len(blob).to_bytes(8, "little"), dtype=np.uint8
    )
    view[8 : 8 + len(blob)] = np.frombuffer(blob, dtype=np.uint8)
    for entry in table:
        arr = prepared[entry["name"]]
        start = base + entry["offset"]
        view[start : start + arr.nbytes] = np.frombuffer(
            arr.tobytes(), dtype=np.uint8
        )
    return total


def unpack_model_from(buf) -> tuple[dict, dict[str, np.ndarray]]:
    """Read ``(manifest, arrays)`` back from a packed buffer.

    The returned arrays are **read-only views** into *buf* -- zero
    copies, which is the whole point: every attaching worker process
    shares one resident copy of the compiled model.  The caller must
    keep the underlying mapping alive as long as the arrays are in use.
    """
    raw = np.frombuffer(buf, dtype=np.uint8)
    if raw.nbytes < 8:
        raise ValueError("packed model buffer is truncated (no header)")
    header_len = int.from_bytes(raw[:8].tobytes(), "little")
    if header_len <= 0 or 8 + header_len > raw.nbytes:
        raise ValueError(
            f"packed model header length {header_len} exceeds the "
            f"{raw.nbytes}-byte buffer"
        )
    try:
        header = json.loads(raw[8 : 8 + header_len].tobytes())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ValueError(f"corrupted packed model header ({exc})") from exc
    if (
        not isinstance(header, dict)
        or header.get("magic") != _PACK_MAGIC
    ):
        raise ValueError("buffer does not hold a packed repro model")
    if header.get("version") != _PACK_VERSION:
        raise ValueError(
            f"packed model version {header.get('version')!r} is not "
            f"supported (expected {_PACK_VERSION})"
        )
    manifest = _validate_manifest(header["manifest"])
    base = _align(8 + header_len)
    arrays: dict[str, np.ndarray] = {}
    for entry in header["arrays"]:
        start = base + int(entry["offset"])
        nbytes = int(entry["nbytes"])
        if start + nbytes > raw.nbytes:
            raise ValueError(
                f"packed array {entry['name']!r} overruns the buffer"
            )
        view = (
            raw[start : start + nbytes]
            .view(np.dtype(entry["dtype"]))
            .reshape([int(d) for d in entry["shape"]])
        )
        view.flags.writeable = False
        arrays[entry["name"]] = view
    return manifest, arrays
