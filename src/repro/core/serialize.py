"""Persist compiled BiQGEMM engines.

Deployment per the paper's footnote 3: "matrix K instead of B can be
loaded in advance into the system, since the weight matrices are fixed
during inference" -- i.e. what ships is the compiled key matrix plus
scales, not float weights.  This module serializes exactly that state
(``.npz``, compressed), so an engine can be compiled once offline and
reloaded by the inference process.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.core.kernel import BiQGemm
from repro.core.keys import KeyMatrix

__all__ = ["save_engine", "load_engine"]

_FORMAT_VERSION = 1


def save_engine(engine: BiQGemm, path: str | Path) -> None:
    """Write an engine's compiled state to *path* (``.npz``)."""
    if not isinstance(engine, BiQGemm):
        raise TypeError(f"expected BiQGemm, got {type(engine).__name__}")
    path = Path(path)
    np.savez_compressed(
        path,
        format_version=np.int64(_FORMAT_VERSION),
        keys=engine.key_matrix.keys,
        alphas=engine.alphas,
        mu=np.int64(engine.mu),
        n=np.int64(engine.shape[1]),
    )


def load_engine(path: str | Path) -> BiQGemm:
    """Reconstruct a :class:`BiQGemm` saved by :func:`save_engine`.

    Validates the format version and the internal consistency of the
    stored arrays (shape/range checks run in the ``KeyMatrix``
    constructor), so a truncated or foreign file fails loudly.
    """
    path = Path(path)
    if not path.exists():
        # np.savez appends .npz when missing; mirror that on load.
        alt = path.with_name(path.name + ".npz")
        if alt.exists():
            path = alt
        else:
            raise FileNotFoundError(f"no engine file at {path}")
    try:
        with np.load(path) as data:
            version = int(data["format_version"])
            if version != _FORMAT_VERSION:
                raise ValueError(
                    f"unsupported engine format version {version} "
                    f"(expected {_FORMAT_VERSION})"
                )
            km = KeyMatrix(
                keys=data["keys"], mu=int(data["mu"]), n=int(data["n"])
            )
            return BiQGemm(km, alphas=data["alphas"])
    except KeyError as exc:
        raise ValueError(
            f"{path} is not a BiQGEMM engine file (missing field {exc})"
        ) from exc
