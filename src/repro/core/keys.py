"""Offline weight compilation: binary matrices -> key matrix.

Paper Fig. 5: consecutive ``mu`` binary weights in a row are bit-packed
into one integer *key* (``{-1, 1, 1, -1} -> 0110b = 6``; the first
element maps to the most-significant bit, ``+1`` to bit ``1``).  The key
matrix ``K`` replaces the weight matrix entirely at inference time --
keys index lookup tables directly, so no unpacking (paper Algorithm 3)
is ever needed.  This is the single source of truth for the key
encoding; :mod:`repro.core.lut` enumerates table entries in the same
order so ``table[key] == row_slice . x_slice`` holds exactly.

Columns that do not divide evenly by ``mu`` are padded with ``-1``
(bit 0).  The corresponding activation rows are zero-padded by
:func:`repro.core.lut.reshape_input`, so padded positions contribute
``(-1) * 0 = 0`` to every table entry and correctness is unaffected.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import ceil_div, check_binary, check_positive_int, pad_axis

__all__ = ["KeyMatrix", "encode_keys", "decode_keys", "key_dtype"]

MAX_MU = 16
"""Largest supported LUT-unit.  ``2^mu`` table entries are materialized
per sub-vector, so ``mu`` beyond 16 is never practical (paper Section
IV-A settles on ``mu = 8``)."""


def key_dtype(mu: int) -> np.dtype:
    """Smallest unsigned dtype able to hold a ``mu``-bit key."""
    check_positive_int(mu, "mu", upper=MAX_MU)
    if mu <= 8:
        return np.dtype(np.uint8)
    return np.dtype(np.uint16)


@dataclass(frozen=True)
class KeyMatrix:
    """Compiled quantized weights: integer keys plus per-row scales.

    Attributes
    ----------
    keys:
        ``(bits, m, groups)`` unsigned integers in ``[0, 2^mu)``.  Bit
        planes are stacked along the leading axis, which realises the
        paper's Fig. 2 vertical concatenation of binary matrices without
        growing the number of lookup tables.
    mu:
        LUT-unit (sub-vector length).
    n:
        Original inner dimension before padding; ``groups ==
        ceil(n / mu)``.
    """

    keys: np.ndarray
    mu: int
    n: int

    def __post_init__(self) -> None:
        keys = np.asarray(self.keys)
        if keys.ndim != 3:
            raise ValueError(f"keys must be (bits, m, groups), got {keys.shape}")
        check_positive_int(self.mu, "mu", upper=MAX_MU)
        check_positive_int(self.n, "n")
        if keys.shape[2] != ceil_div(self.n, self.mu):
            raise ValueError(
                f"groups axis is {keys.shape[2]}, expected ceil({self.n}/{self.mu})"
                f" = {ceil_div(self.n, self.mu)}"
            )
        if keys.size and int(keys.max(initial=0)) >= (1 << self.mu):
            raise ValueError(f"keys contain values >= 2**mu = {1 << self.mu}")
        object.__setattr__(self, "keys", keys.astype(key_dtype(self.mu), copy=False))

    @property
    def bits(self) -> int:
        """Number of quantization bit planes."""
        return int(self.keys.shape[0])

    @property
    def m(self) -> int:
        """Output size (rows of the weight matrix)."""
        return int(self.keys.shape[1])

    @property
    def groups(self) -> int:
        """Number of length-``mu`` groups per row (``ceil(n/mu)``)."""
        return int(self.keys.shape[2])

    @property
    def nbytes(self) -> int:
        """Bytes consumed by the key matrix."""
        return int(self.keys.nbytes)


def encode_keys(binary: np.ndarray, mu: int) -> KeyMatrix:
    """Compile binary weight components into a :class:`KeyMatrix`.

    Parameters
    ----------
    binary:
        ``{-1,+1}`` array of shape ``(m, n)`` (single bit plane) or
        ``(bits, m, n)``.
    mu:
        LUT-unit; each row is chopped into ``ceil(n/mu)`` keys.

    Returns
    -------
    KeyMatrix
    """
    check_positive_int(mu, "mu", upper=MAX_MU)
    arr = check_binary(binary, "binary")
    if arr.ndim == 2:
        arr = arr[None, ...]
    if arr.ndim != 3:
        raise ValueError(f"binary must be 2-D or 3-D, got shape {arr.shape}")
    bits, m, n = arr.shape
    if n == 0 or m == 0:
        raise ValueError("binary matrix must be non-empty")
    padded = pad_axis(arr, mu, axis=2, value=-1)
    groups = padded.shape[2] // mu
    grouped = (padded.reshape(bits, m, groups, mu) > 0).astype(np.uint32)
    weights = (1 << np.arange(mu - 1, -1, -1, dtype=np.uint32))
    keys = (grouped * weights).sum(axis=3, dtype=np.uint32)
    return KeyMatrix(keys=keys.astype(key_dtype(mu)), mu=mu, n=n)


def decode_keys(km: KeyMatrix) -> np.ndarray:
    """Reconstruct the dense ``{-1,+1}`` binary components from keys.

    Inverse of :func:`encode_keys` (padding removed); used by tests and
    by the reference multiply path.
    """
    if not isinstance(km, KeyMatrix):
        raise TypeError(f"expected KeyMatrix, got {type(km).__name__}")
    shifts = np.arange(km.mu - 1, -1, -1, dtype=np.uint32)
    bits_arr = (km.keys[..., None].astype(np.uint32) >> shifts) & np.uint32(1)
    signs = bits_arr.astype(np.int8) * 2 - 1
    full = signs.reshape(km.bits, km.m, km.groups * km.mu)
    return full[:, :, : km.n]
