"""LUT-stationary tiling (paper Algorithm 2, Fig. 7).

Lookup tables are the largest per-batch intermediate -- ``2^mu * 4``
bytes per sub-vector per batch column -- so BiQGEMM keeps a *tile* of
tables resident (in SRAM on real hardware; in cache here) and streams
key-matrix tiles against it.  Tables are built on the fly per group tile
(Algorithm 2 line 3) and never revisited, so no table is ever
constructed twice ("LUT-stationary").

The paper observes (Section III-C) that available SRAM constrains the
tile size and therefore large batches hurt BiQGEMM on commodity parts;
:func:`choose_tiles` encodes that constraint and the cost model in
:mod:`repro.hw.costmodel` consumes it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro._util import ceil_div, check_positive_int

__all__ = ["TileConfig", "iter_tiles", "lut_tile_bytes", "choose_tiles"]


@dataclass(frozen=True)
class TileConfig:
    """Tile extents for the query loop.

    Attributes
    ----------
    tile_m:
        Rows of the key matrix processed per inner tile (paper ``h_t``).
    tile_g:
        Sub-vector groups whose tables are resident at once (paper
        ``w_t``).
    """

    tile_m: int
    tile_g: int

    def __post_init__(self) -> None:
        check_positive_int(self.tile_m, "tile_m")
        check_positive_int(self.tile_g, "tile_g")


def iter_tiles(
    m: int, groups: int, config: TileConfig
) -> Iterator[tuple[slice, slice]]:
    """Yield ``(row_slice, group_slice)`` pairs in LUT-stationary order.

    The group loop is outermost (Algorithm 2 line 2): all row tiles are
    consumed against one resident set of tables before the next tables
    are built.  Every (row, group) cell is covered exactly once, which a
    property test asserts.
    """
    check_positive_int(m, "m")
    check_positive_int(groups, "groups")
    for g0 in range(0, groups, config.tile_g):
        g_sl = slice(g0, min(g0 + config.tile_g, groups))
        for r0 in range(0, m, config.tile_m):
            yield slice(r0, min(r0 + config.tile_m, m)), g_sl


def lut_tile_bytes(tile_g: int, mu: int, batch: int, itemsize: int = 4) -> int:
    """Bytes of lookup-table storage a tile keeps resident.

    ``tile_g * 2^mu * batch * itemsize`` -- the quantity that must fit in
    SRAM/L1 for queries to stay fast (paper Section III-C).
    """
    check_positive_int(tile_g, "tile_g")
    check_positive_int(mu, "mu")
    check_positive_int(batch, "batch")
    check_positive_int(itemsize, "itemsize")
    return tile_g * (1 << mu) * batch * itemsize


def choose_tiles(
    m: int,
    groups: int,
    mu: int,
    batch: int,
    *,
    itemsize: int = 4,
    sram_bytes: int = 1 << 25,
    gather_budget: int = 1 << 23,
) -> TileConfig:
    """Pick tile extents that respect the SRAM and gather-buffer budgets.

    ``tile_g`` is the largest group count whose tables fit in
    *sram_bytes* (at least 1: a single table may exceed a small SRAM at
    large batch, which is exactly the degradation the paper discusses).
    ``tile_m`` bounds the temporary gathered block
    ``tile_m * tile_g * batch`` to *gather_budget* elements so the
    vectorized query path never materializes an oversized intermediate.
    """
    check_positive_int(m, "m")
    check_positive_int(groups, "groups")
    per_group = lut_tile_bytes(1, mu, batch, itemsize)
    tile_g = max(1, min(groups, sram_bytes // max(per_group, 1)))
    tile_m = max(1, min(m, gather_budget // max(tile_g * batch, 1)))
    return TileConfig(tile_m=tile_m, tile_g=tile_g)
