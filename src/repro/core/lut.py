"""Lookup-table construction (paper Section III-B, Fig. 4, Algorithm 1).

For every length-``mu`` activation sub-vector ``x``, the dot product with
a ``{-1,+1}^mu`` weight slice takes one of ``2^mu`` values; this module
materializes all of them, in key order, so that
``table[key] == slice . x`` for the key encoding of
:mod:`repro.core.keys`.

Three builders are provided:

:func:`build_table_reference`
    Direct transcription of paper Algorithm 1 / Fig. 4(b) for a single
    sub-vector, scalar loops and all.  The oracle for the fast builders.
:func:`build_tables_dp`
    Vectorized dynamic programming over all sub-vectors and batch columns
    simultaneously.  Uses the doubling recurrence (each step extends the
    table by flipping one more coordinate from ``-1`` to ``+1``), with an
    optional half-table symmetry mode matching Algorithm 1 lines 8-9
    (``r[2^mu - i] = -r[i-1]``).  Cost per table: ``2^mu + mu - 1``
    additions (paper Eq. 6).
:func:`build_tables_gemm`
    The Fig. 4(a) alternative: one batched GEMM against the full sign
    matrix ``M_mu``.  ``mu`` times more arithmetic (paper ``T_c,mm``) but
    a single BLAS call -- the paper notes GPUs may prefer it; on numpy it
    is the faster choice for small ``mu`` as well, which the autotuner
    can exploit.

A note on the paper's pseudocode: Algorithm 1 lines 2-3 read
``r0 <- r0 + x_i`` (a positive sum) while Fig. 4(b) and the key semantics
require ``r0 = -x0 -x1 ... -x_{mu-1}`` (key ``0`` means all ``-1``).  We
follow the figure; the tests pin ``table[0] == -sum(x)``.
"""

from __future__ import annotations

import numpy as np

from repro._util import check_positive_int, pad_axis
from repro.core.keys import MAX_MU

__all__ = [
    "sign_matrix",
    "reshape_input",
    "reshape_plan",
    "build_table_reference",
    "build_tables_dp",
    "build_tables_gemm",
    "dp_flop_count",
    "gemm_build_flop_count",
]


def sign_matrix(mu: int) -> np.ndarray:
    """Paper Definition 5: ``M_mu``, all ``2^mu`` sign rows in key order.

    ``M[k, j] = +1`` iff bit ``mu-1-j`` of ``k`` is set, so row ``k`` is
    the sign pattern whose key (per :mod:`repro.core.keys`) is ``k``.
    Returned as ``int8`` of shape ``(2^mu, mu)``.
    """
    check_positive_int(mu, "mu", upper=MAX_MU)
    codes = np.arange(1 << mu, dtype=np.uint32)
    shifts = np.arange(mu - 1, -1, -1, dtype=np.uint32)
    return (((codes[:, None] >> shifts) & 1).astype(np.int8) * 2) - 1


_SIGN_CACHE: dict[tuple[int, str], np.ndarray] = {}


def _sign_matrix_cached(mu: int, dtype: np.dtype) -> np.ndarray:
    """``sign_matrix(mu)`` in *dtype*, cached (read-only) per (mu, dtype).

    The GEMM builder needs the float sign matrix on every call; without
    the cache that astype is a per-call allocation in the hot loop.
    A benign race under threads: entries are idempotent.
    """
    key = (mu, np.dtype(dtype).str)
    cached = _SIGN_CACHE.get(key)
    if cached is None:
        cached = sign_matrix(mu).astype(dtype)
        cached.setflags(write=False)
        _SIGN_CACHE[key] = cached
    return cached


def reshape_input(
    x: np.ndarray,
    mu: int,
    *,
    out: np.ndarray | None = None,
    workspace=None,
) -> np.ndarray:
    """Reshape an input matrix into the sub-vector tensor ``Xhat``.

    Paper Definition 2 / Fig. 7: ``X in R^{n x b}`` becomes
    ``Xhat in R^{groups x mu x b}`` with
    ``Xhat[g, :, col] == x_col[g*mu : (g+1)*mu]``.  Rows are zero-padded
    up to a multiple of ``mu``; together with the ``-1`` key padding of
    :func:`repro.core.keys.encode_keys` this leaves all products exact.

    Accepts a 1-D vector (promoted to a single column).  The dtype is
    preserved (float32 stays float32).

    When the input is already C-contiguous, floating and ``mu``-aligned
    the result is a zero-copy **view** of *x* and both *out* and
    *workspace* are ignored -- the replace phase then costs nothing.
    Otherwise the padded copy is written into *out* (which must be a
    C-contiguous ``(groups, mu, b)`` array of the input's float dtype),
    or into a buffer acquired from *workspace*, or into a fresh
    allocation, in that order of preference.
    """
    check_positive_int(mu, "mu", upper=MAX_MU)
    arr = np.asarray(x)
    if arr.ndim == 1:
        arr = arr[:, None]
    if arr.ndim != 2:
        raise ValueError(f"x must be 1-D or 2-D, got shape {arr.shape}")
    if not np.issubdtype(arr.dtype, np.floating):
        arr = arr.astype(np.float64)
    n, b = arr.shape
    groups = -(-n // mu)
    if n == groups * mu and arr.flags.c_contiguous:
        return arr.reshape(groups, mu, b)
    if out is None and workspace is not None:
        out = workspace.acquire("lut.xhat", (groups, mu, b), arr.dtype)
    if out is not None:
        if out.shape != (groups, mu, b):
            raise ValueError(
                f"out must have shape ({groups}, {mu}, {b}), "
                f"got {out.shape}"
            )
        if out.dtype != arr.dtype:
            raise ValueError(
                f"out dtype {out.dtype} != input dtype {arr.dtype}"
            )
        if not out.flags.c_contiguous:
            raise ValueError("out must be C-contiguous")
        flat = out.reshape(groups * mu, b)
        flat[:n] = arr
        if n < groups * mu:
            flat[n:] = 0
        return out
    padded = pad_axis(arr, mu, axis=0, value=0)
    return np.ascontiguousarray(padded.reshape(groups, mu, b))


def reshape_plan(n: int, mu: int) -> dict:
    """Build-time replace-phase decisions for an ``n``-row input.

    The ``compiled`` engine resolves :func:`reshape_input`'s per-call
    branching once at specialization time: ``{"groups", "padded",
    "pad"}`` where ``padded = groups * mu`` is the row count after
    zero-padding and ``pad`` the number of padding rows.  A C-contiguous
    input with ``pad == 0`` reshapes to ``Xhat`` as a zero-copy view;
    anything else is copied into a resident pre-zeroed buffer whose
    padding rows are never rewritten.
    """
    check_positive_int(n, "n")
    check_positive_int(mu, "mu", upper=MAX_MU)
    groups = -(-n // mu)
    padded = groups * mu
    return {"groups": groups, "padded": padded, "pad": padded - n}


def build_table_reference(x_sub: np.ndarray, mu: int | None = None) -> np.ndarray:
    """Paper Algorithm 1 for one sub-vector, transcribed with scalar loops.

    Phases (annotated as in Fig. 4(b)):

    - lines 2-3: ``r[0] = -(x0 + x1 + ... + x_{mu-1})`` (all-minus entry;
      see the module docstring for the sign-convention note),
    - lines 4-7: dynamic programming, ``r[k] = r[j] + 2 * x[mu-i]`` fills
      keys ``2^{i-1} .. 2^i - 1`` for ``i = 1 .. mu-1``,
    - lines 8-9: symmetry, ``r[2^mu - i] = -r[i-1]`` fills the upper half.

    Returns the full table of ``2^mu`` float64 entries in key order.
    """
    x = np.asarray(x_sub, dtype=np.float64)
    if x.ndim != 1:
        raise ValueError(f"x_sub must be 1-D, got shape {x.shape}")
    if mu is None:
        mu = x.shape[0]
    check_positive_int(mu, "mu", upper=MAX_MU)
    if x.shape[0] != mu:
        raise ValueError(f"x_sub has length {x.shape[0]}, expected mu={mu}")
    r = np.zeros(1 << mu, dtype=np.float64)
    # Lines 2-3: the all-(-1) entry.
    for i in range(mu):
        r[0] -= x[i]
    # Lines 4-7: fill keys 1 .. 2^{mu-1} - 1 by flipping one more
    # coordinate (from the back) to +1.
    k = 1
    for i in range(1, mu):
        for j in range(1 << (i - 1)):
            r[k] = r[j] + 2.0 * x[mu - i]
            k += 1
    # Lines 8-9: upper half by negation symmetry.
    for i in range(1, (1 << (mu - 1)) + 1):
        r[(1 << mu) - i] = -r[i - 1]
    return r


def _check_table_out(
    out: np.ndarray, groups: int, mu: int, b: int, dtype: np.dtype
) -> np.ndarray:
    if out.shape != (groups, 1 << mu, b):
        raise ValueError(
            f"out must have shape ({groups}, {1 << mu}, {b}), "
            f"got {out.shape}"
        )
    if out.dtype != dtype:
        raise ValueError(f"out dtype {out.dtype} != table dtype {dtype}")
    return out


def build_tables_dp(
    xhat: np.ndarray,
    *,
    use_symmetry: bool = True,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Vectorized Algorithm 1 over all sub-vectors and batch columns.

    Parameters
    ----------
    xhat:
        ``(groups, mu, b)`` tensor from :func:`reshape_input`.
    use_symmetry:
        When true (default, as in Algorithm 1), only the lower half of
        each table is computed by the doubling recurrence and the upper
        half is the reverse-negation (lines 8-9).  When false the
        recurrence runs all the way, which costs the same O(2^mu) adds
        but is branch-free -- useful for comparing against the paper's
        claim that the two are interchangeable.
    out:
        Optional ``(groups, 2^mu, b)`` destination in the table dtype;
        every entry is overwritten, so a workspace buffer can be
        reused across calls without clearing.

    Returns
    -------
    ``(groups, 2^mu, b)`` table tensor ``Q`` in the dtype of *xhat*:
    ``Q[g, k, col]`` is the dot product of sign pattern ``k`` with
    ``xhat[g, :, col]``.  The per-key batch rows are contiguous, the
    SIMD-friendly arrangement of paper Fig. 6.
    """
    q = _validate_xhat(xhat)
    groups, mu, b = q.shape
    if out is None:
        out = np.empty((groups, 1 << mu, b), dtype=q.dtype)
    else:
        out = _check_table_out(out, groups, mu, b, q.dtype)
    # Entry 0 is -(sum of the sub-vector).  Folded explicitly rather
    # than with q.sum(axis=1): np.add.reduce picks a pairwise or
    # sequential order depending on the array's strides (batch width),
    # which would make table values -- and thus served layer outputs --
    # depend on how many columns share the call.  The explicit fold is
    # order-fixed for every batch size (serving batch-invariance).
    # The fold runs in a small contiguous temporary, not in
    # ``out[:, 0, :]`` directly: numpy's unary ufuncs misread strided
    # inputs written to strided outputs when the inner axis has size 1
    # (batch 1), so the strided-to-strided in-place spelling is unsafe.
    base = np.negative(q[:, 0, :])
    for j in range(1, mu):
        base -= q[:, j, :]
    out[:, 0, :] = base
    limit = mu - 1 if (use_symmetry and mu >= 1) else mu
    # Doubling: after step s the first 2^s entries cover all sign
    # patterns of the last s coordinates (others at -1).
    for s in range(limit):
        j = mu - 1 - s
        half = 1 << s
        np.add(
            out[:, :half, :],
            2.0 * q[:, j : j + 1, :],
            out=out[:, half : 2 * half, :],
        )
    if use_symmetry:
        top = 1 << (mu - 1)
        np.negative(out[:, top - 1 :: -1, :], out=out[:, top:, :])
    return out


def build_tables_gemm(
    xhat: np.ndarray, *, out: np.ndarray | None = None
) -> np.ndarray:
    """Fig. 4(a) construction: ``Q = M_mu . Xhat`` as one batched GEMM.

    Same output layout (and optional *out* destination) as
    :func:`build_tables_dp`; costs ``2^mu * mu`` multiply-adds per
    table (``T_c,mm``) instead of the DP's ``2^mu`` additions, but maps
    onto a single dense matmul.
    """
    q = _validate_xhat(xhat)
    groups, mu, b = q.shape
    if out is not None:
        out = _check_table_out(out, groups, mu, b, q.dtype)
    m_mu = _sign_matrix_cached(mu, q.dtype)
    # (2^mu, mu) @ (groups, mu, b) -> (groups, 2^mu, b)
    return np.matmul(m_mu, q, out=out)


def _validate_xhat(xhat: np.ndarray) -> np.ndarray:
    q = np.asarray(xhat)
    if q.ndim != 3:
        raise ValueError(
            f"xhat must be (groups, mu, b) from reshape_input, got {q.shape}"
        )
    mu = q.shape[1]
    check_positive_int(mu, "mu", upper=MAX_MU)
    if not np.issubdtype(q.dtype, np.floating):
        q = q.astype(np.float64)
    return q


def dp_flop_count(mu: int, groups: int, batch: int) -> int:
    """Additions performed by the DP builder (paper Eq. 6).

    ``(2^mu + mu - 1) * groups * batch``: ``mu-1`` adds for the seed sum
    plus one add per remaining entry (negations counted as adds).
    """
    check_positive_int(mu, "mu", upper=MAX_MU)
    return ((1 << mu) + mu - 1) * groups * batch


def gemm_build_flop_count(mu: int, groups: int, batch: int) -> int:
    """Multiply-adds of the GEMM builder (paper ``T_c,mm``): ``2^mu * mu``
    per table."""
    check_positive_int(mu, "mu", upper=MAX_MU)
    return (1 << mu) * mu * groups * batch
