"""BiQGEMM core: the paper's contribution.

The pipeline has an *offline* and an *online* part:

offline (weights are fixed at inference time, paper footnote 3)
    ``{-1,+1}`` binary weight components are compiled into a *key matrix*
    -- every length-``mu`` row slice becomes an integer key
    (:mod:`repro.core.keys`).

online (per input batch)
    1. the input matrix is reshaped into length-``mu`` sub-vectors
       (*replace* phase),
    2. one lookup table of ``2^mu`` entries is built per sub-vector with
       the dynamic-programming recurrence of paper Algorithm 1
       (:mod:`repro.core.lut`, *build* phase),
    3. keys gather partial products from the tables and accumulate into
       the output under LUT-stationary tiling, paper Algorithm 2
       (:mod:`repro.core.kernel` / :mod:`repro.core.tiling`, *query*
       phase).

:class:`repro.core.kernel.BiQGemm` packages the whole flow;
:mod:`repro.core.autotune` selects the LUT-unit ``mu``;
:mod:`repro.core.profiling` provides the build/query/replace timers used
to regenerate the paper's Fig. 8 plus the allocation counters;
:mod:`repro.core.workspace` provides the scratch-buffer arenas that make
the online phase allocation-free at steady state.
"""

from repro.core.keys import KeyMatrix, encode_keys, decode_keys
from repro.core.lut import (
    sign_matrix,
    reshape_input,
    build_tables_dp,
    build_tables_gemm,
    build_table_reference,
    dp_flop_count,
    gemm_build_flop_count,
)
from repro.core.kernel import BiQGemm
from repro.core.group import BiQGemmGroup
from repro.core.serialize import save_engine, load_engine
from repro.core.tiling import TileConfig, iter_tiles, lut_tile_bytes, choose_tiles
from repro.core.autotune import analytic_mu, empirical_mu
from repro.core.profiling import PhaseProfiler, measure_hot_loop
from repro.core.workspace import Workspace, current_workspace, use_workspace

__all__ = [
    "KeyMatrix",
    "encode_keys",
    "decode_keys",
    "sign_matrix",
    "reshape_input",
    "build_tables_dp",
    "build_tables_gemm",
    "build_table_reference",
    "dp_flop_count",
    "gemm_build_flop_count",
    "BiQGemm",
    "BiQGemmGroup",
    "save_engine",
    "load_engine",
    "TileConfig",
    "iter_tiles",
    "lut_tile_bytes",
    "choose_tiles",
    "analytic_mu",
    "empirical_mu",
    "PhaseProfiler",
    "Workspace",
    "current_workspace",
    "measure_hot_loop",
    "use_workspace",
]
