"""Workspace arenas: reusable scratch buffers for the online phase.

BiQGEMM's deployment economics put all expensive work offline (key
compilation); what remains online is the replace/build/query pipeline --
yet a naive implementation re-allocates every padded input, lookup
table, partial-sum accumulator and output buffer on every call.  At
serving rates that allocation churn is the dominant per-call overhead
this repo controls (the kernels themselves are numpy's).

:class:`Workspace` is a shape/dtype-keyed arena with bump-pointer reset
semantics:

- :meth:`Workspace.acquire` hands out a buffer for a ``(tag, shape,
  dtype)`` key.  The first request per key allocates (a **miss**);
  after :meth:`Workspace.reset`, repeat requests return the same
  buffers in the same order (**hits**) -- so a steady-state request
  loop performs zero numpy allocations after its first (warmup)
  iteration.
- :meth:`Workspace.reset` marks every buffer available again.  It is
  the *request* boundary: buffers handed out since the last reset stay
  valid (and mutually distinct) until the next one, which is what lets
  layer ``k``'s output remain alive as layer ``k+1``'s input.
- Buffers are never returned to the OS; :attr:`bytes_resident` is the
  arena's footprint, exported to serving telemetry alongside the
  hit/miss counters.

:class:`CallScratch` is the within-call companion: a tiny per-call (or
per-worker-thread) cache so a tile loop that needs the same table /
accumulator buffer for every tile acquires it from the arena exactly
once per call instead of once per tile.

:func:`use_workspace` / :func:`current_workspace` propagate an active
arena down arbitrary model call stacks (a transformer's attention
blocks do not thread kwargs through) via thread-local state: the layer
machinery picks the workspace up without any model-code changes, and
code that never touches workspaces sees ``None`` and allocates exactly
as before.

Thread model: one arena serves one request at a time (serving replicas
each own one).  ``acquire`` itself is locked, so the *threaded* tile
path of a single call may acquire worker-local buffers concurrently.
"""

from __future__ import annotations

import threading
import weakref
from contextlib import contextmanager
from typing import Iterator

import numpy as np

__all__ = [
    "CallScratch",
    "Workspace",
    "aggregate_stats",
    "current_workspace",
    "use_workspace",
]

_Key = tuple[str, tuple[int, ...], np.dtype]

# Every live arena, for the process-wide metrics collector.  Weak so
# registration never extends an arena's lifetime: a replica torn down
# by the serving layer drops out of the aggregate on its own.
_LIVE: "weakref.WeakSet[Workspace]" = weakref.WeakSet()
_LIVE_LOCK = threading.Lock()


def aggregate_stats() -> dict:
    """Hit/miss/footprint totals across every live arena.

    The pull-style feed for ``repro_workspace_*`` metrics
    (:mod:`repro.obs.metrics`): summed at scrape time so the arenas'
    hot ``acquire`` path carries no extra bookkeeping.
    """
    with _LIVE_LOCK:
        arenas = list(_LIVE)
    totals = {
        "arenas": len(arenas),
        "hits": 0,
        "misses": 0,
        "bytes_resident": 0,
        "buffers": 0,
    }
    for arena in arenas:
        stats = arena.stats()
        totals["hits"] += stats["hits"]
        totals["misses"] += stats["misses"]
        totals["bytes_resident"] += stats["bytes_resident"]
        totals["buffers"] += stats["buffers"]
    return totals


class Workspace:
    """Shape/dtype-keyed scratch-buffer arena with free lists and an
    explicit request-boundary reset.

    Two lifetimes coexist within a request:

    - **call scratch** (lookup tables, gathered blocks, accumulators):
      dead the moment its kernel call returns.  Callers
      :meth:`release` these (usually via :meth:`CallScratch.close`),
      putting them back on their free list LIFO -- so the next layer's
      same-shaped scratch reuses the cache-hot buffer the previous
      layer just warmed, matching (and beating) what malloc recycling
      gives the allocating path.
    - **request state** (layer activations, kernel outputs): must stay
      alive, and mutually distinct, until the request completes.  These
      are simply never released mid-request; :meth:`reset` reclaims
      them at the boundary.
    """

    def __init__(self, name: str = "workspace"):
        self.name = str(name)
        self._lock = threading.Lock()
        # key -> available buffers (free list, popped LIFO).
        self._free: dict[_Key, list[np.ndarray]] = {}
        # key -> every buffer ever allocated for it (reset source).
        self._all: dict[_Key, list[np.ndarray]] = {}
        # id(buffer) -> key for buffers currently handed out.
        self._borrowed: dict[int, _Key] = {}
        self._roots: set[int] = set()
        self.hits = 0
        self.misses = 0
        self._nbytes = 0
        with _LIVE_LOCK:
            _LIVE.add(self)

    @staticmethod
    def _key(tag: str, shape, dtype) -> _Key:
        # Hot path: tuple/np.dtype are cheap normalizations (np.dtype
        # returns a cached singleton); anything string-y here shows up
        # directly in serving p50.
        if type(shape) is not tuple:
            shape = tuple(shape)
        return (tag, shape, np.dtype(dtype))

    def acquire(
        self, tag: str, shape, dtype=np.float64, *, zero: bool = False
    ) -> np.ndarray:
        """A buffer of *shape*/*dtype* for purpose *tag*.

        Pops the key's free list (a **hit**) or allocates (a **miss**).
        Buffers handed out are mutually distinct until returned by
        :meth:`release` or :meth:`reset`, so a steady-state request
        loop performs zero numpy allocations after its first (warmup)
        iteration.  With ``zero=True`` the buffer is zero-filled
        (reused buffers hold stale values otherwise).
        """
        key = self._key(tag, shape, dtype)
        with self._lock:
            free = self._free.get(key)
            if free:
                buf = free.pop()
                self.hits += 1
            else:
                buf = np.empty(key[1], dtype=key[2])
                self._all.setdefault(key, []).append(buf)
                self._roots.add(id(buf))
                self._nbytes += buf.nbytes
                self.misses += 1
            self._borrowed[id(buf)] = key
        if zero:
            buf[...] = 0
        return buf

    def release(self, buf: np.ndarray) -> None:
        """Return *buf* (an array from :meth:`acquire`, or a view of
        one -- e.g. the vector column a kernel returned) for reuse.

        The caller must be done reading and writing the whole
        underlying buffer: the very next same-shaped acquire --
        possibly another layer's, within the same request -- receives
        it.  Arrays this arena does not currently lend out are
        ignored, so release is idempotent.
        """
        with self._lock:
            node = buf
            while isinstance(node, np.ndarray):
                key = self._borrowed.pop(id(node), None)
                if key is not None:
                    # id(node) keys _borrowed, so node is the acquired
                    # root array itself, not a view.
                    self._free.setdefault(key, []).append(node)
                    return
                node = node.base

    def reset(self) -> None:
        """Make every buffer available again (the request boundary).

        Arrays handed out before the reset must no longer be read or
        written by their previous holders.
        """
        with self._lock:
            self._borrowed.clear()
            for key, bufs in self._all.items():
                free = self._free.setdefault(key, [])
                free.clear()
                free.extend(bufs)

    def owns(self, arr: np.ndarray) -> bool:
        """Whether *arr* is (a view of) a buffer of this arena.

        Callers that hand arena-backed results across a request
        boundary use this to know a defensive copy is required.
        """
        node = arr
        while isinstance(node, np.ndarray):
            if id(node) in self._roots:
                return True
            node = node.base
        return False

    @property
    def bytes_resident(self) -> int:
        """Total bytes of buffers held by the arena."""
        with self._lock:
            return self._nbytes

    @property
    def buffer_count(self) -> int:
        """Number of distinct buffers allocated so far."""
        with self._lock:
            return sum(len(bufs) for bufs in self._all.values())

    def stats(self) -> dict:
        """JSON-able counters for telemetry (hits/misses/bytes)."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "bytes_resident": self._nbytes,
                "buffers": sum(len(b) for b in self._all.values()),
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        s = self.stats()
        return (
            f"Workspace({self.name!r}, buffers={s['buffers']}, "
            f"bytes={s['bytes_resident']}, hits={s['hits']}, "
            f"misses={s['misses']})"
        )


class CallScratch:
    """Per-call buffer cache in front of an (optional) arena.

    A tile loop needs the same scratch buffer (tables, gathered block,
    accumulator) for every tile of a call; acquiring from the arena per
    tile would burn one arena slot per tile.  ``CallScratch`` acquires
    each distinct ``(tag, shape, dtype)`` once -- from the arena when
    one is active, from ``np.empty`` otherwise -- and reuses it for the
    rest of the call; :meth:`close` then releases everything back to
    the arena so the next call's scratch lands in the same, still
    cache-hot memory.  Not thread-safe by design: the threaded tile
    path gives each worker its own instance.
    """

    __slots__ = ("_ws", "_bufs")

    def __init__(self, workspace: Workspace | None = None):
        self._ws = workspace
        self._bufs: dict[_Key, np.ndarray] = {}

    def get(
        self, tag: str, shape, dtype, *, zero: bool = False
    ) -> np.ndarray:
        # Raw (tag, shape, dtype) key: a CallScratch is private to one
        # call (or one worker), whose callers spell dtypes consistently,
        # so skipping normalization is safe and measurably faster.
        key = (tag, shape, dtype)
        buf = self._bufs.get(key)
        if buf is None:
            if self._ws is not None:
                buf = self._ws.acquire(tag, shape, dtype)
            else:
                buf = np.empty(shape, dtype=dtype)
            self._bufs[key] = buf
        if zero:
            buf[...] = 0
        return buf

    # reshape_input accepts either a Workspace or a CallScratch through
    # its ``workspace`` parameter; this alias provides the shared
    # acquire spelling (call-scoped here, request-scoped on Workspace).
    def acquire(
        self, tag: str, shape, dtype=np.float64, *, zero: bool = False
    ) -> np.ndarray:
        return self.get(tag, shape, dtype, zero=zero)

    def close(self) -> None:
        """Release every cached buffer back to the arena (call end).

        The buffers must all be dead: anything that outlives the call
        (outputs, activations) belongs on the arena directly, not in a
        CallScratch.  No-op without an arena.
        """
        if self._ws is not None:
            for buf in self._bufs.values():
                self._ws.release(buf)
        self._bufs.clear()


_ACTIVE = threading.local()


def current_workspace() -> Workspace | None:
    """The workspace active on this thread, or ``None``.

    Layers consult this at call time; code that never enters
    :func:`use_workspace` always sees ``None`` and keeps the
    allocate-per-call behaviour.
    """
    return getattr(_ACTIVE, "workspace", None)


@contextmanager
def use_workspace(workspace: Workspace | None) -> Iterator[Workspace | None]:
    """Make *workspace* the active arena for this thread's calls.

    Nestable; the previous workspace (possibly ``None``) is restored on
    exit.  Passing ``None`` explicitly disables any outer workspace for
    the duration -- useful to fence off code that stashes arrays beyond
    the request boundary.
    """
    previous = getattr(_ACTIVE, "workspace", None)
    _ACTIVE.workspace = workspace
    try:
        yield workspace
    finally:
        _ACTIVE.workspace = previous
