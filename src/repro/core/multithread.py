"""Thread-parallel tile execution for the BiQGEMM query phase.

The paper (Section IV-D) notes both BiQGEMM and GEMM parallelize
linearly with tiling: one thread owns one or more LUT tiles, and "one
lookup table cannot be implemented by coordinating more than two
threads" -- i.e. table construction is not split across workers.  This
module follows that scheme: for each group tile, the tables are built
once, then row tiles are fanned out to a worker pool.  Row tiles write
disjoint output rows, so no synchronization is needed beyond the
barrier between group tiles.

numpy's gather/accumulate kernels release the GIL for large blocks, so
plain Python threads provide genuine parallel speedup here.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor, wait

import numpy as np

from repro.core.profiling import PhaseProfiler
from repro.core.tiling import TileConfig

__all__ = ["run_tiles_threaded", "shutdown_pools"]

_POOLS: dict[int, ThreadPoolExecutor] = {}
_POOLS_LOCK = threading.Lock()


def _pool(threads: int) -> ThreadPoolExecutor:
    """Return a cached pool with *threads* workers (created lazily)."""
    with _POOLS_LOCK:
        pool = _POOLS.get(threads)
        if pool is None:
            pool = ThreadPoolExecutor(
                max_workers=threads, thread_name_prefix="biqgemm"
            )
            _POOLS[threads] = pool
        return pool


def shutdown_pools() -> None:
    """Tear down all cached worker pools (test hygiene)."""
    with _POOLS_LOCK:
        for pool in _POOLS.values():
            pool.shutdown(wait=True)
        _POOLS.clear()


def run_tiles_threaded(
    engine,
    y: np.ndarray,
    xhat: np.ndarray,
    keys: np.ndarray,
    alphas: np.ndarray,
    tiles: TileConfig,
    build_fn,
    query_impl: str,
    profiler: PhaseProfiler | None,
    threads: int,
) -> None:
    """Execute the LUT-stationary tile schedule with a thread pool.

    Mirrors ``BiQGemm._run_tiles`` but dispatches the row tiles of each
    group tile concurrently.  *engine* is the owning
    :class:`~repro.core.kernel.BiQGemm` (its ``_query_tile`` does the
    actual gather work).
    """
    m, _ = y.shape
    groups = xhat.shape[0]
    pool = _pool(threads)

    for g0 in range(0, groups, tiles.tile_g):
        g_sl = slice(g0, min(g0 + tiles.tile_g, groups))
        if profiler is not None:
            with profiler.phase("build"):
                q_tile = build_fn(xhat[g_sl])
        else:
            q_tile = build_fn(xhat[g_sl])

        def job(r0: int, q_tile=q_tile, g_sl=g_sl) -> None:
            r_sl = slice(r0, min(r0 + tiles.tile_m, m))
            if profiler is not None:
                with profiler.phase("query"):
                    engine._query_tile(
                        y, q_tile, keys, alphas, r_sl, g_sl, query_impl
                    )
            else:
                engine._query_tile(
                    y, q_tile, keys, alphas, r_sl, g_sl, query_impl
                )

        futures = [pool.submit(job, r0) for r0 in range(0, m, tiles.tile_m)]
        done, _pending = wait(futures)
        for fut in done:
            exc = fut.exception()
            if exc is not None:
                raise exc
