"""Thread-parallel tile execution for the BiQGEMM query phase.

The paper (Section IV-D) notes both BiQGEMM and GEMM parallelize
linearly with tiling: one thread owns one or more LUT tiles, and "one
lookup table cannot be implemented by coordinating more than two
threads" -- i.e. table construction is not split across workers.  This
module follows that scheme: for each group tile, the tables are built
once, then row tiles are fanned out to a worker pool.  Row tiles write
disjoint output rows, so no synchronization is needed beyond the
barrier between group tiles.

One process-wide executor serves every thread count: it is sized to the
largest request seen and never re-created per count, and per-call
parallelism is bounded by submitting at most ``threads`` chunk jobs per
group tile (each chunk owns every ``threads``-th row tile).  A
long-lived serving process therefore holds exactly one pool no matter
how many thread counts its callers mix, and :func:`shutdown_pools` is
registered via :mod:`atexit` so interpreter exit never leaks executor
threads.

numpy's gather/accumulate kernels release the GIL for large blocks, so
plain Python threads provide genuine parallel speedup here.
"""

from __future__ import annotations

import atexit
import threading
from concurrent.futures import ThreadPoolExecutor, wait

import numpy as np

from repro.core.profiling import PhaseProfiler
from repro.core.tiling import TileConfig
from repro.core.workspace import CallScratch, Workspace

__all__ = ["run_tiles_threaded", "shutdown_pools"]

_POOL: ThreadPoolExecutor | None = None
_POOL_WORKERS = 0
# Executors superseded by growth.  They are NOT shut down on the spot:
# a concurrent matmul may have captured one and still be submitting row
# tiles to it, and submit-after-shutdown raises.  They sit here idle
# (growth is rare and monotone, so the list stays tiny) until
# shutdown_pools() -- called by tests and at interpreter exit -- joins
# them.
_RETIRED: list[ThreadPoolExecutor] = []
_POOL_LOCK = threading.Lock()


def _pool(threads: int) -> ThreadPoolExecutor:
    """The shared executor, grown (never shrunk) to *threads* workers."""
    global _POOL, _POOL_WORKERS
    with _POOL_LOCK:
        if _POOL is None or _POOL_WORKERS < threads:
            if _POOL is not None:
                _RETIRED.append(_POOL)
            _POOL_WORKERS = max(threads, _POOL_WORKERS)
            _POOL = ThreadPoolExecutor(
                max_workers=_POOL_WORKERS, thread_name_prefix="biqgemm"
            )
        return _POOL


def shutdown_pools() -> None:
    """Tear down the shared worker pool and any executors superseded by
    growth (test hygiene / interpreter exit).  The next threaded call
    lazily builds a fresh pool."""
    global _POOL, _POOL_WORKERS
    with _POOL_LOCK:
        pools, _POOL = [_POOL], None
        pools.extend(_RETIRED)
        _RETIRED.clear()
        _POOL_WORKERS = 0
    for pool in pools:
        if pool is not None:
            pool.shutdown(wait=True)


atexit.register(shutdown_pools)


def run_tiles_threaded(
    engine,
    y: np.ndarray,
    xhat: np.ndarray,
    keys: np.ndarray,
    alphas: np.ndarray,
    tiles: TileConfig,
    build_fn,
    query_impl: str,
    profiler: PhaseProfiler | None,
    threads: int,
    workspace: Workspace | None = None,
    scratch: CallScratch | None = None,
) -> None:
    """Execute the LUT-stationary tile schedule with the shared pool.

    Mirrors ``BiQGemm._run_tiles`` but fans the row tiles of each group
    tile out as (at most) *threads* chunk jobs -- chunk ``i`` owns row
    tiles ``i, i+threads, ...`` -- so per-call parallelism equals
    *threads* even though the shared executor may be larger.  *engine*
    is the owning :class:`~repro.core.kernel.BiQGemm` (its
    ``_query_tile`` does the actual gather work).  Each chunk keeps its
    own :class:`~repro.core.workspace.CallScratch` over *workspace*, so
    workers never contend on (or alias) scratch buffers; *scratch* is
    used by the main thread for table construction.
    """
    m, batch = y.shape
    groups = xhat.shape[0]
    pool = _pool(threads)
    own_scratch = scratch is None
    if own_scratch:
        scratch = CallScratch(workspace)
    r_starts = list(range(0, m, tiles.tile_m))
    chunks = [
        r_starts[i :: threads] for i in range(min(threads, len(r_starts)))
    ]
    worker_scratch = [CallScratch(workspace) for _ in chunks]

    try:
        _run_schedule(
            engine,
            y,
            xhat,
            keys,
            alphas,
            tiles,
            build_fn,
            query_impl,
            profiler,
            pool,
            chunks,
            scratch,
            worker_scratch,
        )
    finally:
        for chunk_scratch in worker_scratch:
            chunk_scratch.close()
        if own_scratch:
            scratch.close()


def _run_schedule(
    engine,
    y: np.ndarray,
    xhat: np.ndarray,
    keys: np.ndarray,
    alphas: np.ndarray,
    tiles: TileConfig,
    build_fn,
    query_impl: str,
    profiler: PhaseProfiler | None,
    pool: ThreadPoolExecutor,
    chunks: list[list[int]],
    scratch: CallScratch,
    worker_scratch: list[CallScratch],
) -> None:
    m, batch = y.shape
    groups = xhat.shape[0]
    for g0 in range(0, groups, tiles.tile_g):
        g_sl = slice(g0, min(g0 + tiles.tile_g, groups))
        if profiler is not None:
            with profiler.phase("build"):
                q_tile = engine._build_tile(
                    build_fn, xhat[g_sl], scratch, batch, y.dtype
                )
        else:
            q_tile = engine._build_tile(
                build_fn, xhat[g_sl], scratch, batch, y.dtype
            )

        def job(
            chunk: list[int],
            chunk_scratch: CallScratch,
            q_tile=q_tile,
            g_sl=g_sl,
        ) -> None:
            for r0 in chunk:
                r_sl = slice(r0, min(r0 + tiles.tile_m, m))
                if profiler is not None:
                    with profiler.phase("query"):
                        engine._query_tile(
                            y,
                            q_tile,
                            keys,
                            alphas,
                            r_sl,
                            g_sl,
                            query_impl,
                            chunk_scratch,
                            tile_width=tiles.tile_g,
                        )
                else:
                    engine._query_tile(
                        y,
                        q_tile,
                        keys,
                        alphas,
                        r_sl,
                        g_sl,
                        query_impl,
                        chunk_scratch,
                        tile_width=tiles.tile_g,
                    )

        futures = [
            pool.submit(job, chunk, chunk_scratch)
            for chunk, chunk_scratch in zip(chunks, worker_scratch)
        ]
        done, _pending = wait(futures)
        for fut in done:
            exc = fut.exception()
            if exc is not None:
                raise exc
