"""Empirical tuning: LUT-unit selection and backend micro-benchmarks.

LUT-unit (paper Section IV-A): ``mu`` trades table count against table
size -- larger ``mu`` replaces more arithmetic per lookup but grows each
table exponentially.  From paper Eq. 9 the relative cost of BiQGEMM over
GEMM is ``(2^mu + m) / (m * mu)``, so for a given output size ``m`` the
analytic optimum is ``argmin_mu (2^mu + m) / (m * mu)`` -- the paper
reports that ``mu = 8`` is "close to the value optimized in theory"
across its matrix sizes, and that hardware (SRAM) limits the practical
maximum.  :func:`empirical_mu` re-derives the choice by timing the real
kernel.

:func:`empirical_backend` applies the same verify-empirically loop one
level up: it times every candidate engine of the :mod:`repro.engine`
registry on synthetic data of the target shape and returns the fastest.
It is the ``planner="autotune"`` fallback of the dispatch planner, for
hosts that match none of the modelled Table III machines.
"""

from __future__ import annotations

import time
from typing import Iterable, Sequence

import numpy as np

from repro._util import check_positive_int
from repro.core.keys import MAX_MU

__all__ = [
    "analytic_mu",
    "analytic_cost_ratio",
    "empirical_backend",
    "empirical_mu",
]


def analytic_cost_ratio(mu: int, m: int) -> float:
    """Paper Eq. 9 ratio ``(2^mu + m) / (m * mu)``.

    BiQGEMM time relative to GEMM's ``O(m n b)``; smaller is better and
    values < 1 mean BiQGEMM performs less work than GEMM.
    """
    check_positive_int(mu, "mu", upper=MAX_MU)
    check_positive_int(m, "m")
    return ((1 << mu) + m) / (m * mu)


def analytic_mu(m: int, candidates: Iterable[int] | None = None) -> int:
    """Analytically optimal LUT-unit for output size *m* (paper Eq. 9).

    >>> analytic_mu(1024)
    8
    """
    check_positive_int(m, "m")
    cand = list(candidates) if candidates is not None else list(range(1, MAX_MU + 1))
    if not cand:
        raise ValueError("candidates must be non-empty")
    return min(cand, key=lambda mu: analytic_cost_ratio(mu, m))


def empirical_mu(
    m: int,
    n: int,
    batch: int,
    *,
    bits: int = 1,
    candidates: Sequence[int] = (2, 4, 6, 8, 10),
    repeats: int = 3,
    seed: int = 0,
    builder: str = "auto",
) -> tuple[int, dict[int, float]]:
    """Time the real kernel over *candidates* and return the fastest ``mu``.

    Returns ``(best_mu, {mu: median_seconds})``.  This is the empirical
    verification loop the paper describes ("theoretically optimized mu
    should be verified empirically throughout extensive experiments").
    Uses a fixed seed for the synthetic weights/activations so results
    are reproducible.
    """
    check_positive_int(m, "m")
    check_positive_int(n, "n")
    check_positive_int(batch, "batch")
    check_positive_int(repeats, "repeats")
    if not candidates:
        raise ValueError("candidates must be non-empty")
    from repro.core.kernel import BiQGemm

    rng = np.random.default_rng(seed)
    binary = rng.choice(np.array([-1, 1], dtype=np.int8), size=(bits, m, n))
    x = rng.standard_normal((n, batch)).astype(np.float32)
    timings: dict[int, float] = {}
    for mu in candidates:
        engine = BiQGemm.from_binary(binary, mu=mu)
        engine.matmul(x, builder=builder)  # warm-up
        samples = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            engine.matmul(x, builder=builder)
            samples.append(time.perf_counter() - t0)
        timings[mu] = float(np.median(samples))
    best = min(timings, key=timings.__getitem__)
    return best, timings


def empirical_backend(
    m: int,
    n: int,
    batch: int,
    *,
    bits: int = 3,
    mu: int = 8,
    candidates: Sequence[str] | None = None,
    repeats: int = 3,
    seed: int = 0,
) -> tuple[str, dict[str, float]]:
    """Micro-benchmark registered engines and return the fastest.

    Builds each candidate (default: the registry's lossless engines)
    from one shared synthetic quantization of the target shape, times
    ``matmul`` on synthetic activations, and returns
    ``(best_backend, {backend: median_seconds})``.  Compile time is
    excluded -- engines are compiled once offline in deployment.  Uses
    a fixed seed so results are reproducible on a given host.
    """
    check_positive_int(m, "m")
    check_positive_int(n, "n")
    check_positive_int(batch, "batch")
    check_positive_int(repeats, "repeats")
    from repro.engine import (
        EngineBuildRequest,
        QuantSpec,
        build_engine,
        lossless_engines,
    )

    names = tuple(candidates) if candidates is not None else lossless_engines()
    if not names:
        raise ValueError("candidates must be non-empty")
    rng = np.random.default_rng(seed)
    spec = QuantSpec(bits=bits, mu=mu)
    request = EngineBuildRequest(
        spec=spec, weight=rng.standard_normal((m, n))
    )
    x = rng.standard_normal((n, batch)).astype(np.float32)
    timings: dict[str, float] = {}
    for name in names:
        engine = build_engine(name, request)
        engine.matmul(x)  # warm-up
        samples = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            engine.matmul(x)
            samples.append(time.perf_counter() - t0)
        timings[name] = float(np.median(samples))
    best = min(timings, key=timings.__getitem__)
    return best, timings
