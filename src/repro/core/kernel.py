"""The BiQGEMM engine (paper Algorithms 1+2, Sections III-B/III-C).

:class:`BiQGemm` compiles a binary-coding-quantized weight matrix once
(offline) into a key matrix, then multiplies it by activation matrices
with the three-phase pipeline the paper profiles in Fig. 8:

replace
    Reshape/pad the input into length-``mu`` sub-vectors.
build
    Construct one ``2^mu``-entry lookup table per sub-vector per batch
    column (dynamic programming, Algorithm 1 -- or the batched-GEMM
    alternative of Fig. 4(a)).
query
    Stream key-matrix tiles against the resident tables, gathering and
    accumulating partial sums (Algorithm 2, LUT-stationary tiling), then
    apply the per-row scales and fold bit planes (Eq. 2).

Multi-bit weights stack their key planes along the leading axis; only
query work grows with the bit width -- tables are shared across planes,
the property the paper highlights in Section III-B.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Literal

import numpy as np

from repro._util import check_matmul_out, check_positive_int
from repro.core.keys import KeyMatrix, decode_keys, encode_keys
from repro.core.lut import build_tables_dp, build_tables_gemm, reshape_input
from repro.core.profiling import PhaseProfiler
from repro.core.tiling import TileConfig, choose_tiles, iter_tiles
from repro.core.workspace import CallScratch, Workspace

__all__ = ["BiQGemm"]

Builder = Literal["dp", "dp-nosym", "gemm", "auto"]
QueryImpl = Literal["auto", "flat", "loop"]


def _phase(profiler: PhaseProfiler | None, name: str):
    return profiler.phase(name) if profiler is not None else nullcontext()


class BiQGemm:
    """Lookup-table GEMM engine for a binary-coding-quantized matrix.

    Construct via :meth:`from_float`, :meth:`from_bcq` or
    :meth:`from_binary`; then call :meth:`matmul` any number of times.
    The key matrix is immutable after construction, mirroring the
    paper's deployment model in which the compiled keys (not the weights)
    ship with the inference system.

    Parameters
    ----------
    key_matrix:
        Compiled keys from :func:`repro.core.keys.encode_keys`.
    alphas:
        Per-bit, per-row scale factors, shape ``(bits, m)``.  ``None``
        means all-ones (a purely binary matrix).

    The ``batch_invariant`` attribute (default False) pins the two
    batch-tuned execution knobs -- tile selection and the ``"auto"``
    query path -- to batch-independent choices, making every output
    column bit-identical no matter how many other columns share the
    call.  The :mod:`repro.engine` registry enables it for engines
    serving :class:`~repro.nn.linear.QuantLinear` layers, where the
    serving batcher coalesces and splits requests and per-request
    results must not depend on who they were batched with; direct
    kernel users keep the per-call heuristics (the flat gather only
    wins at GEMV-like batches anyway).
    """

    accepts_profiler = True
    """``matmul`` takes ``profiler=`` -- the traced layer path uses this
    to route the shared :func:`repro.obs.kernel_profiler` (phase spans)
    only to engines that understand it."""

    def __init__(self, key_matrix: KeyMatrix, alphas: np.ndarray | None = None):
        if not isinstance(key_matrix, KeyMatrix):
            raise TypeError(
                f"key_matrix must be a KeyMatrix, got {type(key_matrix).__name__}"
            )
        self._keys = key_matrix
        if alphas is None:
            alphas = np.ones((key_matrix.bits, key_matrix.m), dtype=np.float64)
        alphas = np.asarray(alphas, dtype=np.float64)
        if alphas.shape != (key_matrix.bits, key_matrix.m):
            raise ValueError(
                f"alphas must have shape (bits, m) = "
                f"({key_matrix.bits}, {key_matrix.m}), got {alphas.shape}"
            )
        if not np.isfinite(alphas).all():
            raise ValueError("alphas contain NaN or Inf")
        self._alphas = alphas
        self._keys_intp: np.ndarray | None = None
        self._keys_gT: np.ndarray | None = None
        self._alphas_cache: dict[str, np.ndarray] = {}
        self._offsets_cache: dict[int, np.ndarray] = {}
        self._flat_idx_cache: dict[int, np.ndarray] = {}
        self.batch_invariant = False

    backend_name = "biqgemm"
    """Registry key of this engine in :mod:`repro.engine`."""

    _INVARIANT_TILE_BATCH = 32
    """Reference batch for tile selection in batch-invariant mode."""

    _FUSED_QUERY_BUDGET = 1 << 20
    """Max gathered elements (rows * tile_g * batch) for the fused
    single-take loop-query variant; larger blocks fall back to the
    per-group gather to keep the working set cache-sized.  The two
    variants are bit-identical, so this is purely a speed knob."""

    def _flat_keys(self) -> np.ndarray:
        """Key planes widened to intp, cached for the flat query path.

        The flat gather indexes with these keys on every call; caching
        the conversion removes a per-tile, per-bit-plane astype from
        the matmul hot loop.  Built lazily on the first flat-path query
        so engines that only ever use the loop path (or are built
        transiently) never pay the ~8x wider copy.  A benign race under
        threads: the assignment is idempotent.
        """
        if self._keys_intp is None:
            self._keys_intp = self._keys.keys.astype(np.intp)
        return self._keys_intp

    def _alphas_for(self, dtype: np.dtype) -> np.ndarray:
        """Per-bit scales cast to *dtype*, cached (hot-loop allocation
        removal; a benign idempotent race under threads)."""
        key = np.dtype(dtype).str
        cached = self._alphas_cache.get(key)
        if cached is None:
            cached = self._alphas.astype(dtype, copy=False)
            self._alphas_cache[key] = cached
        return cached

    def _flat_offsets(self, tile_g: int) -> np.ndarray:
        """``(1, tile_g)`` table base offsets for the flat gather, cached
        per tile width."""
        cached = self._offsets_cache.get(tile_g)
        if cached is None:
            cached = (
                np.arange(tile_g, dtype=np.intp) * (1 << self.mu)
            )[None, :]
            self._offsets_cache[tile_g] = cached
        return cached

    def _keys_by_group(self) -> np.ndarray:
        """Keys transposed to ``(bits, groups, m)`` intp, contiguous.

        The loop query gathers one group column per step; slicing this
        cache yields the contiguous intp index vector ``np.take`` wants
        -- a strided or narrow-dtype index is silently converted
        (allocated) on every gather.  Built lazily; benign idempotent
        race under threads.
        """
        if self._keys_gT is None:
            self._keys_gT = np.ascontiguousarray(
                self._keys.keys.transpose(0, 2, 1).astype(np.intp)
            )
        return self._keys_gT

    def _flat_idx(self, tile_width: int) -> np.ndarray:
        """Precomputed flat gather indices, ``(bits, m, groups)`` intp.

        ``pre[i, r, g] = keys[i, r, g] + (g % tile_width) * 2^mu`` -- the
        exact index the flat query gathers with, for any tile whose
        group start is a multiple of *tile_width*.  Keys are immutable,
        so this is a per-engine constant: computing it per call costs a
        broadcast-add whose numpy iteration buffer is itself a hot-loop
        allocation, and slicing the cached contiguous matrix costs
        nothing.  One entry per distinct tile width (usually one).
        """
        cached = self._flat_idx_cache.get(tile_width)
        if cached is None:
            groups = self._keys.groups
            offs = (
                np.arange(groups, dtype=np.intp) % tile_width
            ) * (1 << self.mu)
            # Deliberately left writable: np.take silently copies
            # read-only index arrays, which would re-introduce the very
            # per-call allocation this cache removes.
            cached = np.ascontiguousarray(
                self._flat_keys() + offs[None, None, :]
            )
            self._flat_idx_cache[tile_width] = cached
        return cached

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_float(
        cls,
        w: np.ndarray,
        *,
        bits: int,
        mu: int = 8,
        method: str = "greedy",
    ) -> "BiQGemm":
        """Quantize a dense float matrix with BCQ and compile it.

        ``method`` is forwarded to :func:`repro.quant.bcq.bcq_quantize`.
        """
        from repro.quant.bcq import bcq_quantize

        bcq = bcq_quantize(w, bits, method=method)
        return cls.from_bcq(bcq, mu=mu)

    @classmethod
    def from_bcq(cls, bcq, *, mu: int = 8) -> "BiQGemm":
        """Compile an existing :class:`~repro.quant.bcq.BCQTensor`."""
        km = encode_keys(bcq.binary, mu)
        return cls(km, alphas=bcq.alphas)

    @classmethod
    def from_binary(
        cls,
        binary: np.ndarray,
        *,
        alphas: np.ndarray | None = None,
        mu: int = 8,
    ) -> "BiQGemm":
        """Compile raw ``{-1,+1}`` components (2-D or ``(bits, m, n)``).

        With ``alphas=None`` this engine computes the exact integer-valued
        product ``B . x`` -- handy for testing and for the Table IV 1-bit
        setting.
        """
        arr = np.asarray(binary)
        if arr.ndim == 2:
            arr = arr[None, ...]
        km = encode_keys(arr, mu)
        if alphas is not None:
            alphas = np.asarray(alphas, dtype=np.float64)
            if alphas.ndim == 1:
                alphas = alphas[None, :]
        return cls(km, alphas=alphas)

    # ------------------------------------------------------------------
    # metadata
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        """Logical ``(m, n)`` of the represented weight matrix."""
        return (self._keys.m, self._keys.n)

    @property
    def bits(self) -> int:
        """Number of quantization bit planes."""
        return self._keys.bits

    @property
    def mu(self) -> int:
        """LUT-unit."""
        return self._keys.mu

    @property
    def key_matrix(self) -> KeyMatrix:
        """The compiled key matrix (read-only view of this engine)."""
        return self._keys

    @property
    def alphas(self) -> np.ndarray:
        """Per-bit, per-row scales, shape ``(bits, m)``."""
        return self._alphas

    @property
    def weight_nbytes(self) -> int:
        """Bytes of compiled weight state (keys + scales)."""
        return self._keys.nbytes + self._alphas.nbytes

    def op_counts(self, batch: int) -> dict[str, int]:
        """Analytic operation counts for one multiply at *batch* columns.

        ``build_adds`` follows paper Eq. 6 (DP construction) and
        ``lookups`` follows Eq. 7 scaled by the bit width; tests compare
        them against instrumented runs.
        """
        check_positive_int(batch, "batch")
        from repro.core.lut import dp_flop_count

        g = self._keys.groups
        return {
            "build_adds": dp_flop_count(self.mu, g, batch),
            "lookups": self._keys.m * g * batch * self.bits,
        }

    def trace_plan(self, dtype) -> dict:
        """Build-time specialization plan for one activation dtype.

        The ``compiled`` engine (:mod:`repro.engine.compiled`) resolves
        every per-call decision of :meth:`matmul` ahead of time and
        replays them as a straight-line trace.  This hook is the
        kernel-side half of that build step: it fixes the
        batch-invariant tile schedule (tiles depend only on the dtype's
        itemsize at the reference batch) and materializes, per
        ``(row-tile, group-tile, bit-plane)``, the **contiguous** flat
        gather index vector and the alpha column the query needs --
        sharing this engine's immutable index/scale caches, so repeated
        plans cost views, not copies.

        Returns ``{"tiles": TileConfig, "keys_by_group": ndarray,
        "group_tiles": [...]}`` where each group-tile entry is
        ``(g_slice, g_len, row_tiles)`` and each row-tile entry is
        ``(r_slice, rows, idxT_per_bit, alpha_per_bit)``.
        ``idxT_per_bit[i]`` is the **group-major** contiguous
        ``(g_len, rows)`` flat gather index matrix (so the gathered
        block lands group-major and the sequential group fold runs over
        contiguous slices); ``keys_by_group`` is the shared
        ``(bits, groups, m)`` contiguous key cache for the wide-batch
        per-group gather.  Everything is batch-independent; only the
        runtime buffers (tables, gathers, accumulators) depend on the
        batch.
        """
        dtype = np.dtype(dtype)
        m, _ = self.shape
        groups = self._keys.groups
        tiles = choose_tiles(
            m,
            groups,
            self.mu,
            self._INVARIANT_TILE_BATCH,
            itemsize=dtype.itemsize,
        )
        alphas = self._alphas_for(dtype)
        pre = self._flat_idx(tiles.tile_g)
        group_tiles: list[tuple] = []
        current: list | None = None
        for r_sl, g_sl in iter_tiles(m, groups, tiles):
            if current is None or current[0] != g_sl.start:
                current = [g_sl.start, g_sl, g_sl.stop - g_sl.start, []]
                group_tiles.append(current)
            rows = r_sl.stop - r_sl.start
            idx_t = tuple(
                np.ascontiguousarray(pre[i, r_sl, g_sl].T)
                for i in range(self.bits)
            )
            alpha = tuple(
                alphas[i, r_sl, None] for i in range(self.bits)
            )
            current[3].append((r_sl, rows, idx_t, alpha))
        return {
            "tiles": tiles,
            "keys_by_group": self._keys_by_group(),
            "group_tiles": [
                (g_sl, g_len, row_tiles)
                for _, g_sl, g_len, row_tiles in group_tiles
            ],
        }

    # ------------------------------------------------------------------
    # multiplication
    # ------------------------------------------------------------------
    def matmul(
        self,
        x: np.ndarray,
        *,
        builder: Builder = "auto",
        tiles: TileConfig | None = None,
        threads: int = 1,
        query_impl: QueryImpl = "auto",
        profiler: PhaseProfiler | None = None,
        out: np.ndarray | None = None,
        workspace: Workspace | None = None,
    ) -> np.ndarray:
        """Compute ``W_quantized @ x`` via table lookups.

        Parameters
        ----------
        x:
            Input of shape ``(n, b)`` or ``(n,)`` (paper orientation:
            activations are columns).
        builder:
            ``"dp"`` -- Algorithm 1 dynamic programming (default);
            ``"dp-nosym"`` -- DP without the half-table symmetry;
            ``"gemm"`` -- the Fig. 4(a) batched-GEMM construction;
            ``"auto"`` -- pick by a small size heuristic.
        tiles:
            Explicit :class:`~repro.core.tiling.TileConfig`; default picks
            SRAM-feasible tiles via
            :func:`~repro.core.tiling.choose_tiles`.
        threads:
            Worker threads for the query phase (row tiles are
            independent).  1 = serial, matching the paper's Fig. 10
            single-thread setup.
        query_impl:
            ``"flat"`` gathers a ``(rows, tile_g, b)`` block in one fancy
            index; ``"loop"`` iterates groups with 2-D gathers;
            ``"auto"`` chooses by block size.
        profiler:
            Optional :class:`~repro.core.profiling.PhaseProfiler`
            accumulating build/query/replace seconds (Fig. 8).
        out:
            Optional destination of shape ``(m, b)`` (``(m,)`` for
            vector input) in the computation dtype.  Must not alias
            *x*; it is zero-filled and accumulated into.
        workspace:
            Optional :class:`~repro.core.workspace.Workspace` arena
            supplying the padded input, table, gather and accumulator
            scratch (and the output when *out* is not given), so a
            steady-state call loop performs no numpy allocations.
            Results are bit-identical with or without a workspace.

        Returns
        -------
        ``(m, b)`` array in *x*'s float dtype (``(m,)`` for vector
        input); *out* when it was provided.
        """
        check_positive_int(threads, "threads", upper=256)
        # Call-scoped scratch (tables, gathers, accumulators, padded
        # input): released back to the arena when the call completes,
        # so consecutive layers reuse the same cache-hot buffers.
        scratch = CallScratch(workspace)
        with _phase(profiler, "replace"):
            arr = np.asarray(x)
            vector_in = arr.ndim == 1
            if vector_in:
                arr = arr[:, None]
            if arr.ndim != 2:
                raise ValueError(f"x must be 1-D or 2-D, got shape {arr.shape}")
            if arr.shape[0] != self._keys.n:
                raise ValueError(
                    f"x has {arr.shape[0]} rows, engine expects n={self._keys.n}"
                )
            if not np.issubdtype(arr.dtype, np.floating):
                arr = arr.astype(np.float64)
            xhat = reshape_input(arr, self.mu, workspace=scratch)
        batch = arr.shape[1]
        groups = self._keys.groups
        m = self._keys.m
        dtype = arr.dtype
        # Batch-invariant mode (layer/serving engines, see the class
        # docstring): every knob the runtime batch normally tunes --
        # tile shapes and the query gather path -- is pinned to
        # batch-independent choices, so the float accumulation order,
        # and hence every output column, is identical whether a request
        # runs alone or coalesced into a micro-batch.
        if tiles is None:
            tile_batch = (
                self._INVARIANT_TILE_BATCH if self.batch_invariant else batch
            )
            tiles = choose_tiles(
                m, groups, self.mu, tile_batch, itemsize=dtype.itemsize
            )
        if self.batch_invariant and query_impl == "auto":
            query_impl = "loop"
        if self.batch_invariant and builder == "auto":
            # The batched-BLAS table construction reduces in a
            # batch-width-dependent order; Algorithm 1's DP builder adds
            # per column in a fixed order regardless of batch.
            builder = "dp"
        build_fn = self._resolve_builder(builder, batch)

        if out is not None:
            y = check_matmul_out(out, m, batch, dtype, arr, vector_in)
            y[...] = 0
        elif workspace is not None:
            y = workspace.acquire("kernel.y", (m, batch), dtype, zero=True)
        else:
            y = np.zeros((m, batch), dtype=dtype)
        alphas = self._alphas_for(dtype)
        keys = self._keys.keys

        try:
            if threads == 1:
                self._run_tiles(
                    y,
                    xhat,
                    keys,
                    alphas,
                    tiles,
                    build_fn,
                    query_impl,
                    profiler,
                    scratch,
                )
            else:
                from repro.core.multithread import run_tiles_threaded

                run_tiles_threaded(
                    self,
                    y,
                    xhat,
                    keys,
                    alphas,
                    tiles,
                    build_fn,
                    query_impl,
                    profiler,
                    threads,
                    workspace=workspace,
                    scratch=scratch,
                )
        finally:
            scratch.close()
        if out is not None:
            return out
        return y[:, 0] if vector_in else y

    def matmul_into(
        self,
        x: np.ndarray,
        *,
        out: np.ndarray | None = None,
        workspace: Workspace | None = None,
        **kwargs,
    ) -> np.ndarray:
        """The engine-protocol spelling of the workspace path.

        Equivalent to ``matmul(x, out=out, workspace=workspace)``;
        registered engines without this method are served through plain
        :meth:`matmul` by the layer stack (transparent fallback).
        """
        return self.matmul(x, out=out, workspace=workspace, **kwargs)

    def __call__(self, x: np.ndarray, **kwargs) -> np.ndarray:
        """Alias for :meth:`matmul`."""
        return self.matmul(x, **kwargs)

    def matmul_reference(self, x: np.ndarray) -> np.ndarray:
        """Slow oracle: decode keys and apply paper Eq. 2 directly.

        Used by the tests to pin the fast paths; never use in production
        code paths (it materializes the dense binary components).
        """
        binary = decode_keys(self._keys).astype(np.float64)
        arr = np.asarray(x, dtype=np.float64)
        vector_in = arr.ndim == 1
        if vector_in:
            arr = arr[:, None]
        partial = np.einsum("imn,nb->imb", binary, arr)
        out = np.einsum("im,imb->mb", self._alphas, partial)
        return out[:, 0] if vector_in else out

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _resolve_builder(self, builder: Builder, batch: int):
        if builder == "dp":
            return build_tables_dp
        if builder == "dp-nosym":
            return lambda xh, out=None: build_tables_dp(
                xh, use_symmetry=False, out=out
            )
        if builder == "gemm":
            return build_tables_gemm
        if builder == "auto":
            # Paper Section III-B: "depending on the characteristics of a
            # processor, a choice of appropriate scheme to implement
            # lookup tables would be different".  On the numpy substrate
            # the batched-BLAS construction beats the strided-write DP
            # despite doing mu-fold more arithmetic (measured in
            # benchmarks/bench_ablation_lut_build.py), so auto picks it.
            return build_tables_gemm
        raise ValueError(
            f"builder must be 'dp', 'dp-nosym', 'gemm' or 'auto', got {builder!r}"
        )

    def _build_tile(
        self,
        build_fn,
        xhat_slice: np.ndarray,
        scratch: CallScratch,
        batch: int,
        dtype: np.dtype,
    ) -> np.ndarray:
        """Build one group tile's tables into reusable scratch storage.

        The table buffer is the largest per-call intermediate; one
        buffer per distinct tile width (full tile + possible remainder)
        serves every group tile of the call -- the LUT-stationary
        schedule never needs two alive at once.
        """
        g_len = xhat_slice.shape[0]
        buf = scratch.get(
            "lut.tables", (g_len, 1 << self.mu, batch), dtype
        )
        return build_fn(xhat_slice, out=buf)

    def _run_tiles(
        self,
        y: np.ndarray,
        xhat: np.ndarray,
        keys: np.ndarray,
        alphas: np.ndarray,
        tiles: TileConfig,
        build_fn,
        query_impl: QueryImpl,
        profiler: PhaseProfiler | None,
        scratch: CallScratch | None = None,
    ) -> None:
        m, batch = y.shape
        groups = xhat.shape[0]
        if scratch is None:
            scratch = CallScratch()
        seen_g: int | None = None
        q_tile: np.ndarray | None = None
        for r_sl, g_sl in iter_tiles(m, groups, tiles):
            if seen_g != g_sl.start:
                with _phase(profiler, "build"):
                    q_tile = self._build_tile(
                        build_fn, xhat[g_sl], scratch, batch, y.dtype
                    )
                seen_g = g_sl.start
            with _phase(profiler, "query"):
                self._query_tile(
                    y,
                    q_tile,
                    keys,
                    alphas,
                    r_sl,
                    g_sl,
                    query_impl,
                    scratch,
                    tile_width=tiles.tile_g,
                )

    def _query_tile(
        self,
        y: np.ndarray,
        q_tile: np.ndarray,
        keys: np.ndarray,
        alphas: np.ndarray,
        r_sl: slice,
        g_sl: slice,
        query_impl: QueryImpl,
        scratch: CallScratch | None = None,
        *,
        tile_width: int | None = None,
    ) -> None:
        """Accumulate one (row, group) tile into *y* for all bit planes.

        All gather/accumulate intermediates come from *scratch*, so with
        an arena-backed scratch the query phase allocates nothing; the
        in-place formulation performs the identical floating-point
        operations in the identical order as the allocating one, so
        results are bit-for-bit the same.
        """
        tile_g = q_tile.shape[0]
        batch = q_tile.shape[2]
        rows = r_sl.stop - r_sl.start
        if scratch is None:
            scratch = CallScratch()
        impl = query_impl
        if impl == "auto":
            # Measured on numpy: the single fancy-index gather ("flat")
            # only wins for (near-)GEMV shapes where per-group loop
            # overhead dominates; with batch rows to copy per key, the
            # group loop's contiguous row gathers are several times
            # faster.  See benchmarks/bench_ablation_query_impl.py.
            impl = (
                "flat"
                if batch <= 2 and rows * tile_g * batch <= (1 << 22)
                else "loop"
            )
        # mode="clip" below never clips -- keys are < 2^mu by
        # construction (and flat indices < tile_g * 2^mu) -- it just
        # lets np.take write straight into the scratch buffer without
        # the bounds-checking temporary of mode="raise".
        if impl == "flat":
            flat = q_tile.reshape(tile_g * q_tile.shape[1], batch)
            width = tile_width if tile_width is not None else tile_g
            # Tile-aligned starts slice the precomputed contiguous index
            # matrix (the common case: every tile the schedule emits);
            # anything else computes indices into scratch the slow way.
            pre = (
                self._flat_idx(width)
                if g_sl.start % width == 0
                else None
            )
            if pre is None:
                keys_intp = self._flat_keys()
                offsets = self._flat_offsets(tile_g)
                idx_buf = scratch.get("q.idx", (rows, tile_g), np.intp)
            gath = scratch.get("q.gather", (rows, tile_g, batch), y.dtype)
            acc = scratch.get("q.acc", (rows, batch), y.dtype)
            for i in range(self.bits):
                if pre is not None:
                    idx = pre[i, r_sl, g_sl]
                else:
                    np.add(keys_intp[i, r_sl, g_sl], offsets, out=idx_buf)
                    idx = idx_buf
                np.take(flat, idx, axis=0, out=gath, mode="clip")
                np.sum(gath, axis=1, out=acc)
                np.multiply(acc, alphas[i, r_sl, None], out=acc)
                y[r_sl] += acc
        elif impl == "loop":
            acc = scratch.get("q.acc", (rows, batch), y.dtype)
            g0 = g_sl.start
            # GEMV fast path: gather every group's rows in one
            # vectorized take, then fold the groups sequentially.  The
            # additions run in exactly the per-group order of the
            # fallback below, so the two variants are bit-identical and
            # the batch-dependent choice between them cannot break
            # serving batch-invariance; measured on numpy, the single
            # big gather wins only for 1-2 column (decode) calls --
            # wider batches read the gathered block with strides and
            # lose to the fallback's contiguous row blocks.
            width = tile_width if tile_width is not None else tile_g
            fused = (
                batch <= 2
                and rows * tile_g * batch <= self._FUSED_QUERY_BUDGET
                and g0 % width == 0
            )
            if fused:
                flat = q_tile.reshape(tile_g * q_tile.shape[1], batch)
                pre = self._flat_idx(width)
                gath3 = scratch.get(
                    "q.gather", (rows, tile_g, batch), y.dtype
                )
                for i in range(self.bits):
                    np.take(
                        flat, pre[i, r_sl, g_sl], axis=0, out=gath3,
                        mode="clip",
                    )
                    acc[...] = 0
                    for gi in range(tile_g):
                        acc += gath3[:, gi, :]
                    np.multiply(acc, alphas[i, r_sl, None], out=acc)
                    y[r_sl] += acc
            else:
                gath = scratch.get("q.row", (rows, batch), y.dtype)
                keys_gt = self._keys_by_group()
                for i in range(self.bits):
                    acc[...] = 0
                    for gi in range(tile_g):
                        np.take(
                            q_tile[gi],
                            keys_gt[i, g0 + gi, r_sl],
                            axis=0,
                            out=gath,
                            mode="clip",
                        )
                        acc += gath
                    np.multiply(acc, alphas[i, r_sl, None], out=acc)
                    y[r_sl] += acc
        else:
            raise ValueError(
                f"query_impl must be 'auto', 'flat' or 'loop', got {query_impl!r}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        m, n = self.shape
        return (
            f"BiQGemm(m={m}, n={n}, bits={self.bits}, mu={self.mu}, "
            f"keys={self._keys.nbytes}B)"
        )
