"""Phase timers and allocation counters for the BiQGEMM pipeline.

The paper profiles BiQGEMM into three operations: lookup-table
construction (*build*), value retrieval (*query*) and memory replacement
for tiling (*replace*).  :class:`PhaseProfiler` accumulates wall-clock
time per phase across any number of kernel invocations and reports the
same proportions Fig. 8 plots.

The workspace-arena work (zero-allocation steady state) adds
tracemalloc-backed **allocation counters**: with
``track_allocations=True`` each phase also records the peak bytes
allocated above its entry level, and counts the phase occurrences whose
transient footprint exceeded ``min_alloc_bytes`` -- an *allocation
event*.  A steady-state hot loop served entirely from a warm
:class:`~repro.core.workspace.Workspace` records zero events;
benchmarks assert exactly that.  :func:`measure_hot_loop` is the
standalone spelling for measuring any callable the same way.

tracemalloc sees numpy array data (numpy registers its buffers with the
tracemalloc domain), so these counters cover exactly the allocations
the arenas exist to remove.  Peak tracking is process-global; run
allocation measurement single-threaded (as Fig. 8 does for time).
"""

from __future__ import annotations

import gc
import threading
import time
import tracemalloc
from contextlib import contextmanager
from typing import Callable, Iterator

__all__ = [
    "PhaseProfiler",
    "PHASES",
    "allocation_tracking",
    "measure_hot_loop",
]

PHASES = ("build", "query", "replace")
"""Canonical phase names, matching the paper's Fig. 8 legend."""

_DEFAULT_MIN_ALLOC = 16 * 1024
"""Transient bytes below which a phase/call is not an allocation event.

Python-level bookkeeping (frames, small ints, ndarray view headers)
costs a few hundred bytes per call; real numpy buffer churn in the
kernel shapes of interest starts in the tens of kilobytes.  The margin
between the two is what makes "zero allocations" assertable at all.
"""


@contextmanager
def allocation_tracking() -> Iterator[None]:
    """Ensure tracemalloc is tracing for the duration.

    Leaves a tracemalloc session started by the caller running; starts
    (and stops) one otherwise.
    """
    started_here = not tracemalloc.is_tracing()
    if started_here:
        tracemalloc.start()
    try:
        yield
    finally:
        if started_here:
            tracemalloc.stop()


def measure_hot_loop(
    fn: Callable[[], object],
    *,
    warmups: int = 2,
    repeats: int = 3,
    min_alloc_bytes: int = _DEFAULT_MIN_ALLOC,
) -> dict:
    """Measure the steady-state allocation behaviour of *fn*.

    Runs *fn* ``warmups`` times (populating caches and arenas), then
    ``repeats`` measured times; each measured call records the peak
    tracemalloc bytes above its entry level (the transient footprint of
    everything the call allocated, even if freed before returning --
    net deltas would hide churn).  Returns::

        {"alloc_events": calls whose peak exceeded min_alloc_bytes,
         "peak_new_bytes": largest per-call transient footprint,
         "calls": repeats, "min_alloc_bytes": threshold}

    ``alloc_events == 0`` is the zero-allocation steady-state
    criterion the workspace arenas target.
    """
    if warmups < 0 or repeats < 1:
        raise ValueError("warmups must be >= 0 and repeats >= 1")
    events = 0
    peak_max = 0
    with allocation_tracking():
        for _ in range(warmups):
            fn()
        gc.collect()
        for _ in range(repeats):
            tracemalloc.reset_peak()
            current0, _ = tracemalloc.get_traced_memory()
            fn()
            _, peak = tracemalloc.get_traced_memory()
            delta = max(0, peak - current0)
            peak_max = max(peak_max, delta)
            if delta >= min_alloc_bytes:
                events += 1
    return {
        "alloc_events": events,
        "peak_new_bytes": peak_max,
        "calls": repeats,
        "min_alloc_bytes": min_alloc_bytes,
    }


class PhaseProfiler:
    """Accumulates wall-clock seconds (and optionally allocation peaks)
    per named pipeline phase.

    Thread-safe for timing: concurrent tiles may record phases
    simultaneously (the totals then reflect aggregate busy time, not
    the critical path -- Fig. 8 is single-threaded, matching the
    paper's setup).  Allocation tracking uses the process-global
    tracemalloc peak and is only meaningful single-threaded; it
    requires tracemalloc to be tracing (see :func:`allocation_tracking`)
    and records zeros otherwise.

    Example
    -------
    >>> prof = PhaseProfiler()
    >>> with prof.phase("build"):
    ...     pass
    >>> sorted(prof.seconds) == ['build', 'query', 'replace']
    True
    """

    def __init__(
        self,
        *,
        track_allocations: bool = False,
        min_alloc_bytes: int = _DEFAULT_MIN_ALLOC,
        span_prefix: str | None = None,
    ) -> None:
        self._lock = threading.Lock()
        self.seconds: dict[str, float] = {p: 0.0 for p in PHASES}
        self.calls: dict[str, int] = {p: 0 for p in PHASES}
        self.track_allocations = bool(track_allocations)
        self.min_alloc_bytes = int(min_alloc_bytes)
        self.alloc_bytes: dict[str, int] = {p: 0 for p in PHASES}
        self.alloc_events: dict[str, int] = {p: 0 for p in PHASES}
        # With span_prefix set, each phase occurrence also opens a
        # ``<prefix><phase>`` span on the global tracer -- the bridge
        # that puts the Fig. 8 build/query/replace decomposition on a
        # live request timeline (``repro.obs.kernel_profiler`` uses
        # prefix "kernel.").  No-op while tracing is disabled.
        self.span_prefix = span_prefix

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Context manager timing (and optionally alloc-counting) one
        phase occurrence."""
        if name not in self.seconds:
            raise ValueError(f"unknown phase {name!r}; expected one of {PHASES}")
        phase_span = None
        if self.span_prefix is not None:
            from repro.obs.trace import span as _span

            phase_span = _span(self.span_prefix + name)
            phase_span.__enter__()
        tracking = self.track_allocations and tracemalloc.is_tracing()
        if tracking:
            tracemalloc.reset_peak()
            mem0 = tracemalloc.get_traced_memory()[0]
        start = time.perf_counter()
        try:
            yield
        finally:
            if phase_span is not None:
                phase_span.__exit__(None, None, None)
            elapsed = time.perf_counter() - start
            delta = 0
            if tracking:
                delta = max(0, tracemalloc.get_traced_memory()[1] - mem0)
            with self._lock:
                self.seconds[name] += elapsed
                self.calls[name] += 1
                if tracking:
                    self.alloc_bytes[name] += delta
                    if delta >= self.min_alloc_bytes:
                        self.alloc_events[name] += 1

    def add(self, name: str, seconds: float) -> None:
        """Record *seconds* against phase *name* without a context manager."""
        if name not in self.seconds:
            raise ValueError(f"unknown phase {name!r}; expected one of {PHASES}")
        with self._lock:
            self.seconds[name] += float(seconds)
            self.calls[name] += 1

    @property
    def total(self) -> float:
        """Total profiled seconds across all phases."""
        return sum(self.seconds.values())

    @property
    def total_alloc_events(self) -> int:
        """Allocation events across all phases (0 = steady state)."""
        return sum(self.alloc_events.values())

    def proportions(self) -> dict[str, float]:
        """Fraction of total time per phase (the Fig. 8 y-axis).

        Returns all-zero fractions when nothing was recorded.
        """
        total = self.total
        if total <= 0.0:
            return {p: 0.0 for p in PHASES}
        return {p: self.seconds[p] / total for p in PHASES}

    def reset(self) -> None:
        """Zero all accumulators."""
        with self._lock:
            for p in PHASES:
                self.seconds[p] = 0.0
                self.calls[p] = 0
                self.alloc_bytes[p] = 0
                self.alloc_events[p] = 0

    def merge(self, other: "PhaseProfiler") -> None:
        """Fold another profiler's totals into this one."""
        with self._lock:
            for p in PHASES:
                self.seconds[p] += other.seconds[p]
                self.calls[p] += other.calls[p]
                self.alloc_bytes[p] += other.alloc_bytes[p]
                self.alloc_events[p] += other.alloc_events[p]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(f"{p}={self.seconds[p]:.4f}s" for p in PHASES)
        return f"PhaseProfiler({parts})"
