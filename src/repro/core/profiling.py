"""Phase timers for the BiQGEMM pipeline (paper Fig. 8).

The paper profiles BiQGEMM into three operations: lookup-table
construction (*build*), value retrieval (*query*) and memory replacement
for tiling (*replace*).  :class:`PhaseProfiler` accumulates wall-clock
time per phase across any number of kernel invocations and reports the
same proportions Fig. 8 plots.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator

__all__ = ["PhaseProfiler", "PHASES"]

PHASES = ("build", "query", "replace")
"""Canonical phase names, matching the paper's Fig. 8 legend."""


class PhaseProfiler:
    """Accumulates wall-clock seconds per named pipeline phase.

    Thread-safe: concurrent tiles may record phases simultaneously (the
    totals then reflect aggregate busy time, not the critical path --
    Fig. 8 is single-threaded, matching the paper's setup).

    Example
    -------
    >>> prof = PhaseProfiler()
    >>> with prof.phase("build"):
    ...     pass
    >>> sorted(prof.seconds) == ['build', 'query', 'replace']
    True
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.seconds: dict[str, float] = {p: 0.0 for p in PHASES}
        self.calls: dict[str, int] = {p: 0 for p in PHASES}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Context manager timing one phase occurrence."""
        if name not in self.seconds:
            raise ValueError(f"unknown phase {name!r}; expected one of {PHASES}")
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            with self._lock:
                self.seconds[name] += elapsed
                self.calls[name] += 1

    def add(self, name: str, seconds: float) -> None:
        """Record *seconds* against phase *name* without a context manager."""
        if name not in self.seconds:
            raise ValueError(f"unknown phase {name!r}; expected one of {PHASES}")
        with self._lock:
            self.seconds[name] += float(seconds)
            self.calls[name] += 1

    @property
    def total(self) -> float:
        """Total profiled seconds across all phases."""
        return sum(self.seconds.values())

    def proportions(self) -> dict[str, float]:
        """Fraction of total time per phase (the Fig. 8 y-axis).

        Returns all-zero fractions when nothing was recorded.
        """
        total = self.total
        if total <= 0.0:
            return {p: 0.0 for p in PHASES}
        return {p: self.seconds[p] / total for p in PHASES}

    def reset(self) -> None:
        """Zero all accumulators."""
        with self._lock:
            for p in PHASES:
                self.seconds[p] = 0.0
                self.calls[p] = 0

    def merge(self, other: "PhaseProfiler") -> None:
        """Fold another profiler's totals into this one."""
        with self._lock:
            for p in PHASES:
                self.seconds[p] += other.seconds[p]
                self.calls[p] += other.calls[p]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(f"{p}={self.seconds[p]:.4f}s" for p in PHASES)
        return f"PhaseProfiler({parts})"
