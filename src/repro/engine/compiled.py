"""The ``compiled`` engine: per-shape specialized fused BiQGEMM traces.

Every per-call decision :meth:`repro.core.kernel.BiQGemm.matmul` makes
-- shape checks, reshape-vs-copy, tile selection, builder/query-path
dispatch, gather-index arithmetic, alpha casting, dtype promotion --
depends only on ``(m, n, bits, mu, dtype, batch)``, all of which are
known ahead of the first call for a planned layer.  This module
resolves them **once**, at specialization time, into a closed-over
straight-line *trace* per ``(dtype, batch)``:

- the batch-invariant tile schedule and per-tile contiguous gather
  indices come from :meth:`BiQGemm.trace_plan` (shared, immutable);
- all runtime buffers (padded input, tables, gathers, accumulators,
  output) are resident on the trace, so steady-state calls allocate
  nothing;
- the gather layout is specialized to the batch: GEMV-like batches
  (``<= 2``) gather each tile in one **group-major** flat take so the
  sequential group fold runs over contiguous slices (measured ~2x over
  the generic strided fold); wider batches keep the cache-friendly
  per-group table gathers with pre-sliced contiguous key vectors.
  Both fold the groups in the reference loop-query order, so every
  output bit matches the unfused engine at every batch;
- **epilogue fusion**: the layer bias and its following activation
  (``relu``/``gelu``/``sigmoid``/``tanh``, discovered at ``compile()``
  time) execute inside the query pass via ``out=``-aware ufunc
  chaining, eliminating one activation-sized memory round-trip per
  fused layer.

Anything outside the specialized envelope -- an unseen dtype once the
trace budget is spent, a batch above :data:`TRACE_MAX_BATCH`, a
concurrent call racing for the resident buffers -- falls back to the
inner batch-invariant :class:`BiQGemm` plus a generic epilogue, which
is bit-identical by construction; the trace is purely a speed layer.

Registered as the seventh backend (``backend="compiled"``) with
``auto_candidate=False``: it is lossless but only enters a plan when a
caller extends the candidate list explicitly -- the fusion planning
pass in :meth:`repro.api.QuantModel.compile` does, for layers whose
following activation is fusible.
"""

from __future__ import annotations

import threading
from typing import Mapping

import numpy as np

from repro._util import check_matmul_out
from repro.core.kernel import BiQGemm
from repro.core.lut import build_tables_dp, reshape_plan
from repro.engine.base import EngineBuildRequest
from repro.engine.registry import EngineEntry, register_engine
from repro.hw.costmodel import estimate_compiled

__all__ = [
    "CompiledKernelEngine",
    "TRACE_MAX_BATCH",
    "MAX_TRACES",
]

TRACE_MAX_BATCH = 64
"""Largest batch a trace is specialized for.

The compiled engine targets the GEMV/small-batch regime where the cost
model picks it; larger batches (where dense BLAS wins anyway) serve
through the inner engine fallback rather than holding huge resident
table buffers.
"""

MAX_TRACES = 8
"""Resident ``(dtype, batch)`` specializations per engine.

A serving loop sees a handful of exact batch sizes (the batcher
coalesces toward bucket boundaries); once the budget is spent, unseen
shapes fall back to the inner engine instead of growing memory without
bound.
"""


class _Trace:
    """One ``(dtype, batch)`` specialization: plan slices + buffers.

    Holds *views* into the engine-wide :meth:`BiQGemm.trace_plan`
    (immutable, shared across traces) and owns the resident runtime
    buffers sized for this exact batch.  ``run`` is the straight-line
    kernel: no shape checks, no dispatch, no allocation.
    """

    __slots__ = (
        "engine",
        "dtype",
        "batch",
        "group_tiles",
        "keys_by_group",
        "flat_gather",
        "two_mu",
        "bits",
        "n",
        "padded",
        "groups",
        "mu",
        "tables",
        "gath",
        "acc",
        "y",
        "_xhat",
    )

    # GEMV-like batches gather each (row, group) tile in one flat
    # group-major take; wider batches win with per-group table gathers
    # (the flat gather's random rows thrash cache once rows carry
    # several columns each).  Matches the inner kernel's measured
    # crossover; both variants fold groups in the identical order.
    _FLAT_GATHER_MAX_BATCH = 2

    def __init__(self, engine: "CompiledKernelEngine", dtype, batch: int):
        inner = engine._inner
        self.engine = engine
        self.dtype = np.dtype(dtype)
        self.batch = int(batch)
        plan = engine._plan_for(self.dtype)
        self.group_tiles = plan["group_tiles"]
        self.keys_by_group = plan["keys_by_group"]
        self.flat_gather = self.batch <= self._FLAT_GATHER_MAX_BATCH
        self.two_mu = 1 << inner.mu
        self.bits = inner.bits
        self.mu = inner.mu
        m, n = inner.shape
        rp = reshape_plan(n, inner.mu)
        self.n = n
        self.groups = rp["groups"]
        self.padded = rp["padded"]
        b = self.batch
        # One table buffer per distinct group-tile width (full tile plus
        # a possible remainder): the LUT-stationary schedule never needs
        # two alive at once, but the two widths need their own shapes.
        self.tables = {
            g_len: np.empty((g_len, self.two_mu, b), self.dtype)
            for _, g_len, _ in self.group_tiles
        }
        self.gath = {}
        self.acc = {}
        for _, g_len, row_tiles in self.group_tiles:
            for _, rows, _, _ in row_tiles:
                gkey = (g_len, rows) if self.flat_gather else rows
                if gkey not in self.gath:
                    shape = (
                        (g_len, rows, b) if self.flat_gather else (rows, b)
                    )
                    self.gath[gkey] = np.empty(shape, self.dtype)
                if rows not in self.acc:
                    self.acc[rows] = np.empty((rows, b), self.dtype)
        self.y = np.empty((m, b), self.dtype)
        # Padded-input buffer, built lazily: aligned contiguous inputs
        # reshape to Xhat as a zero-copy view and never need it.
        self._xhat: np.ndarray | None = None

    @property
    def nbytes(self) -> int:
        total = self.y.nbytes
        total += sum(a.nbytes for a in self.tables.values())
        total += sum(a.nbytes for a in self.gath.values())
        total += sum(a.nbytes for a in self.acc.values())
        if self._xhat is not None:
            total += self._xhat.nbytes
        return total

    def _xhat_for(self, arr: np.ndarray) -> np.ndarray:
        """Resident Xhat copy for inputs the view path can't serve.

        Zero-filled once at allocation; the data rows are overwritten
        per call and the padding rows are never touched again, so the
        zero padding :func:`reshape_input` guarantees holds for free.
        """
        xhat = self._xhat
        if xhat is None:
            xhat = np.zeros(
                (self.groups, self.mu, self.batch), self.dtype
            )
            self._xhat = xhat
        flat = xhat.reshape(self.padded, self.batch)
        flat[: self.n] = arr
        return xhat

    def run(
        self, arr: np.ndarray, y_dest: np.ndarray | None = None
    ) -> np.ndarray:
        """Execute the trace on ``(n, batch)`` input *arr*.

        *y_dest*, when given, receives the pre-activation result
        directly (it must be ``(m, batch)`` in the trace dtype and must
        not alias *arr* -- the caller guarantees both); otherwise the
        resident ``y`` buffer is used.  Bias, when fused, is folded in;
        the activation epilogue is the engine's job (it may change
        dtype).
        """
        if arr.shape[0] == self.padded and arr.flags.c_contiguous:
            xhat = arr.reshape(self.groups, self.mu, self.batch)
        else:
            xhat = self._xhat_for(arr)
        y = self.y if y_dest is None else y_dest
        y[...] = 0
        bits = self.bits
        keys_gt = self.keys_by_group
        for g_sl, g_len, row_tiles in self.group_tiles:
            tbl = self.tables[g_len]
            build_tables_dp(xhat[g_sl], out=tbl)
            if self.flat_gather:
                flat = tbl.reshape(g_len * self.two_mu, self.batch)
                for r_sl, rows, idx_t_bits, alpha_bits in row_tiles:
                    gath = self.gath[(g_len, rows)]
                    acc = self.acc[rows]
                    for i in range(bits):
                        # mode="clip" never clips (indices are in range
                        # by construction); it skips the bounds-check
                        # temporary.  Group-major gather: the fold below
                        # adds contiguous (rows, b) slices in the
                        # reference loop-query group order.
                        np.take(
                            flat, idx_t_bits[i], axis=0, out=gath,
                            mode="clip",
                        )
                        acc[...] = 0
                        for gi in range(g_len):
                            np.add(acc, gath[gi], out=acc)
                        np.multiply(acc, alpha_bits[i], out=acc)
                        y[r_sl] += acc
            else:
                g0 = g_sl.start
                for r_sl, rows, _, alpha_bits in row_tiles:
                    gath = self.gath[rows]
                    acc = self.acc[rows]
                    for i in range(bits):
                        acc[...] = 0
                        for gi in range(g_len):
                            np.take(
                                tbl[gi],
                                keys_gt[i, g0 + gi, r_sl],
                                axis=0,
                                out=gath,
                                mode="clip",
                            )
                            np.add(acc, gath, out=acc)
                        np.multiply(acc, alpha_bits[i], out=acc)
                        y[r_sl] += acc
        bias_col = self.engine._bias_col(self.dtype)
        if bias_col is not None:
            y += bias_col
        return y


class CompiledKernelEngine:
    """Per-shape specialized BiQGEMM with a fused bias+activation epilogue.

    Wraps a batch-invariant :class:`BiQGemm` (the correctness anchor
    and the fallback path) and serves hot calls through resident
    straight-line traces (see the module docstring).  Satisfies the
    :class:`repro.engine.base.MatmulEngine` protocol including
    ``matmul_into``.

    Parameters
    ----------
    inner:
        The compiled key-matrix kernel; must have ``batch_invariant``
        set (the constructor enforces it) so fallback and trace paths
        are bit-identical.
    bias:
        Optional ``(m,)`` layer bias folded into the query pass.
    activation:
        Optional fusible activation name
        (:data:`repro.nn.functional.FUSIBLE_ACTIVATIONS`) applied in
        the epilogue via ``out=`` chaining.
    """

    backend_name = "compiled"
    """Registry key of this engine in :mod:`repro.engine`."""

    accepts_profiler = True
    """``matmul`` forwards ``profiler=`` to the inner kernel.  Any
    keyword argument opts the call out of the resident-trace fast path
    (traces are compiled for the bare call), so profiled calls take the
    fallback kernel -- phase timing and phase spans still cover them."""

    def __init__(
        self,
        inner: BiQGemm,
        *,
        bias: np.ndarray | None = None,
        activation: str | None = None,
    ):
        if not isinstance(inner, BiQGemm):
            raise TypeError(
                f"inner must be a BiQGemm, got {type(inner).__name__}"
            )
        inner.batch_invariant = True
        self._inner = inner
        m = inner.shape[0]
        if bias is not None:
            bias = np.asarray(bias)
            if bias.shape != (m,):
                raise ValueError(
                    f"bias must have shape ({m},), got {bias.shape}"
                )
            if not np.issubdtype(bias.dtype, np.floating):
                bias = bias.astype(np.float64)
        self.bias = bias
        if activation is not None:
            # Lazy import: repro.engine must stay importable without
            # triggering the nn package (which imports repro.engine).
            from repro.nn.functional import activation_fn

            self._activation_fn = activation_fn(activation)
        else:
            self._activation_fn = None
        self.activation = activation
        self._plans: dict[str, dict] = {}
        self._traces: dict[tuple[str, int], _Trace] = {}
        self._bias_cols: dict[str, np.ndarray] = {}
        # One runner at a time owns the resident buffers; a concurrent
        # call on a shared engine takes the (bit-identical) fallback
        # instead of blocking or corrupting.
        self._run_lock = threading.Lock()

    # ------------------------------------------------------------------
    # metadata
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        """Logical ``(m, n)`` of the represented weight matrix."""
        return self._inner.shape

    @property
    def bits(self) -> int:
        return self._inner.bits

    @property
    def mu(self) -> int:
        return self._inner.mu

    @property
    def alphas(self) -> np.ndarray:
        return self._inner.alphas

    @property
    def key_matrix(self):
        return self._inner.key_matrix

    @property
    def inner(self) -> BiQGemm:
        """The wrapped batch-invariant kernel (the fallback path)."""
        return self._inner

    @property
    def fused_epilogue(self) -> bool:
        """Whether this engine applies bias/activation itself.

        The layer stack checks this: when True it must *not* add its
        own bias or activation on top.  A bare engine (no bias, no
        activation -- e.g. built by the autotuner from a weight-only
        request) behaves exactly like ``biqgemm`` and reports False.
        """
        return self.bias is not None or self.activation is not None

    @property
    def weight_nbytes(self) -> int:
        """Bytes of compiled weight state (keys + scales + fused bias)."""
        total = self._inner.weight_nbytes
        if self.bias is not None:
            total += self.bias.nbytes
        return total

    def result_dtype(self, dtype) -> np.dtype:
        """Output dtype for activations of *dtype* (epilogue included)."""
        dtype = np.dtype(dtype)
        if self.activation is None:
            return dtype
        from repro.nn.functional import activation_result_dtype

        return activation_result_dtype(self.activation, dtype)

    def op_counts(self, batch: int) -> dict[str, int]:
        """Inner kernel counts plus fused epilogue element ops."""
        counts = dict(self._inner.op_counts(batch))
        m = self.shape[0]
        epilogue = 0
        if self.bias is not None:
            epilogue += m * batch
        if self.activation is not None:
            epilogue += m * batch
        counts["epilogue_ops"] = epilogue
        return counts

    # ------------------------------------------------------------------
    # specialization
    # ------------------------------------------------------------------
    def _plan_for(self, dtype: np.dtype) -> dict:
        key = dtype.str
        plan = self._plans.get(key)
        if plan is None:
            plan = self._inner.trace_plan(dtype)
            self._plans[key] = plan
        return plan

    def _bias_col(self, dtype: np.dtype) -> np.ndarray | None:
        """The fused bias as an ``(m, 1)`` column in *dtype*, cached."""
        if self.bias is None:
            return None
        key = dtype.str
        col = self._bias_cols.get(key)
        if col is None:
            col = np.ascontiguousarray(
                self.bias.astype(dtype, copy=False)[:, None]
            )
            self._bias_cols[key] = col
        return col

    def specialize(self, batch: int, dtype) -> bool:
        """Build (or fetch) the trace for an exact ``(batch, dtype)``.

        Returns True when a trace is resident afterwards; False when
        the shape is outside the specialization envelope (batch too
        large, trace budget spent) and calls at it will use the
        fallback path.
        """
        batch = int(batch)
        dtype = np.dtype(dtype)
        if batch < 1 or batch > TRACE_MAX_BATCH:
            return False
        key = (dtype.str, batch)
        with self._run_lock:
            if key in self._traces:
                return True
            if len(self._traces) >= MAX_TRACES:
                return False
            self._traces[key] = _Trace(self, dtype, batch)
            return True

    def specialization(self) -> dict:
        """The resident specialization plan, JSON-able.

        ``{"batches": [...], "dtypes": [...]}`` -- what the v3 artifact
        caches so :func:`repro.api.load` can rehydrate compiled traces
        without re-planning (see :meth:`prebuild`).
        """
        with self._run_lock:
            keys = list(self._traces)
        return {
            "batches": sorted({b for _, b in keys}),
            "dtypes": sorted({s for s, _ in keys}),
        }

    def prebuild(self, plan: Mapping) -> None:
        """Rebuild traces from a cached :meth:`specialization` plan."""
        for s in plan.get("dtypes", ()):
            for b in plan.get("batches", ()):
                self.specialize(int(b), np.dtype(str(s)))

    @property
    def trace_count(self) -> int:
        """Resident ``(dtype, batch)`` traces (observability)."""
        with self._run_lock:
            return len(self._traces)

    def trace_nbytes(self) -> int:
        """Resident trace buffer bytes (observability)."""
        with self._run_lock:
            return sum(t.nbytes for t in self._traces.values())

    # ------------------------------------------------------------------
    # multiplication
    # ------------------------------------------------------------------
    def matmul(
        self,
        x: np.ndarray,
        *,
        out: np.ndarray | None = None,
        workspace=None,
        **kwargs,
    ) -> np.ndarray:
        """``activation(W_quantized @ x + bias)`` via a resident trace.

        Same input/output conventions as :meth:`BiQGemm.matmul`, except
        that with a fused activation the result (and any *out*) is in
        :meth:`result_dtype` of the input's float dtype.  Extra keyword
        arguments (explicit tiles, builders, threads, profilers) opt
        out of the trace and delegate to the inner kernel, epilogue
        still applied.
        """
        arr = np.asarray(x)
        vector_in = arr.ndim == 1
        if vector_in:
            arr = arr[:, None]
        if arr.ndim != 2:
            raise ValueError(f"x must be 1-D or 2-D, got shape {arr.shape}")
        n = self._inner.shape[1]
        if arr.shape[0] != n:
            raise ValueError(
                f"x has {arr.shape[0]} rows, engine expects n={n}"
            )
        if not np.issubdtype(arr.dtype, np.floating):
            arr = arr.astype(np.float64)
        m = self.shape[0]
        batch = arr.shape[1]
        rdt = self.result_dtype(arr.dtype)
        res2 = None
        if out is not None:
            res2 = check_matmul_out(out, m, batch, rdt, arr, vector_in)
        elif workspace is not None:
            # Workspace path without an explicit destination: serve the
            # result from the arena (steady state allocates nothing),
            # same contract as the other out-capable engines.
            res2 = workspace.acquire("compiled.out", (m, batch), rdt)

        trace = None
        locked = False
        if not kwargs and 1 <= batch <= TRACE_MAX_BATCH:
            locked = self._run_lock.acquire(blocking=False)
            if locked:
                key = (arr.dtype.str, batch)
                trace = self._traces.get(key)
                if trace is None and len(self._traces) < MAX_TRACES:
                    trace = _Trace(self, arr.dtype, batch)
                    self._traces[key] = trace
        try:
            if trace is not None:
                # Pre-activation result straight into the caller's
                # buffer when dtypes line up (no extra copy).
                direct = (
                    res2 is not None
                    and self.activation is None
                    and res2.dtype == arr.dtype
                )
                y = trace.run(arr, y_dest=res2 if direct else None)
            else:
                y = self._inner.matmul(arr, workspace=workspace, **kwargs)
                bias_col = self._bias_col(y.dtype)
                if bias_col is not None:
                    y += bias_col
            # The epilogue must read y before the lock drops: a
            # resident y belongs to the next trace run after that.
            result = self._epilogue(y, res2, resident=trace is not None)
        finally:
            if locked:
                self._run_lock.release()
        if out is not None:
            return out
        return result[:, 0] if vector_in else result

    def matmul_into(
        self,
        x: np.ndarray,
        *,
        out: np.ndarray | None = None,
        workspace=None,
        **kwargs,
    ) -> np.ndarray:
        """The engine-protocol spelling of the workspace path."""
        return self.matmul(x, out=out, workspace=workspace, **kwargs)

    def __call__(self, x: np.ndarray, **kwargs) -> np.ndarray:
        return self.matmul(x, **kwargs)

    def matmul_reference(self, x: np.ndarray) -> np.ndarray:
        """Slow oracle: inner Eq. 2 reference plus a plain epilogue."""
        y = self._inner.matmul_reference(x)
        vector_in = np.asarray(x).ndim == 1
        cols = y[:, None] if vector_in else y
        bias_col = self._bias_col(cols.dtype)
        if bias_col is not None:
            cols = cols + bias_col
        if self._activation_fn is not None:
            cols = self._activation_fn(cols)
        return cols[:, 0] if vector_in else cols

    def _epilogue(
        self,
        y: np.ndarray,
        res2: np.ndarray | None,
        *,
        resident: bool,
    ) -> np.ndarray:
        """Apply the activation (bias is already folded into *y*).

        *y* is the pre-activation ``(m, b)`` block -- the resident
        trace buffer, the caller's *res2* itself (direct-write case),
        or a fallback result.  Returns the array holding the final
        values; the caller may not own *y*, so without *res2* a
        resident *y* is copied out.
        """
        if self._activation_fn is None:
            if res2 is None:
                return y.copy() if resident else y
            if res2 is not y:
                np.copyto(res2, y)
            return res2
        from repro.nn.functional import activation_result_dtype

        rdt = activation_result_dtype(self.activation, y.dtype)
        if res2 is None:
            res2 = np.empty(y.shape, rdt)
        return self._activation_fn(y, out=res2)


# ----------------------------------------------------------------------
# registration
# ----------------------------------------------------------------------
def _build_compiled(request: EngineBuildRequest) -> CompiledKernelEngine:
    inner = BiQGemm.from_bcq(request.get_bcq(), mu=request.spec.mu)
    inner.batch_invariant = True
    return CompiledKernelEngine(
        inner,
        bias=request.bias,
        activation=getattr(request.spec, "fuse", None),
    )


def _cost_compiled(machine, m, n, b, spec):
    return estimate_compiled(
        machine,
        m,
        n,
        b,
        bits=spec.bits,
        mu=spec.mu,
        fuse=getattr(spec, "fuse", None),
    )


def _export_compiled(engine: CompiledKernelEngine) -> dict:
    state = {
        "keys": engine.key_matrix.keys,
        "alphas": engine.alphas,
        "mu": int(engine.mu),
        "n": int(engine.shape[1]),
    }
    if engine.bias is not None:
        state["bias"] = engine.bias
    if engine.activation is not None:
        state["activation"] = np.bytes_(engine.activation.encode("ascii"))
    return state


def _decode_str(value) -> str:
    raw = np.asarray(value).item()
    if isinstance(raw, bytes):
        return raw.decode("ascii")
    return str(raw)


def _restore_compiled(state: Mapping) -> CompiledKernelEngine:
    from repro.core.keys import KeyMatrix

    km = KeyMatrix(
        keys=np.asarray(state["keys"]), mu=int(state["mu"]), n=int(state["n"])
    )
    inner = BiQGemm(km, alphas=np.asarray(state["alphas"]))
    inner.batch_invariant = True
    bias = state.get("bias")
    if bias is not None:
        bias = np.asarray(bias)
    activation = state.get("activation")
    if activation is not None:
        activation = _decode_str(activation)
    return CompiledKernelEngine(inner, bias=bias, activation=activation)


register_engine(
    EngineEntry(
        name="compiled",
        build=_build_compiled,
        cost=_cost_compiled,
        lossless=True,
        auto_candidate=False,
        supports_out=True,
        description=(
            "per-shape specialized BiQGEMM traces with a fused "
            "bias+activation epilogue"
        ),
        export=_export_compiled,
        restore=_restore_compiled,
    )
)
