"""The engine abstraction every matmul backend implements.

The paper's central observation (Section V, Table IV, Fig. 10) is that
*which* kernel wins depends on shape, batch size, bit width and
hardware: BiQGEMM dominates the small-batch GEMV-like regime while a
tuned BLAS overtakes it at large batch, XNOR needs quantized
activations, packed GEMM pays for unpacking, and so on.  To let one
system hold all of those engines behind a single seam, this module
defines:

:class:`MatmulEngine`
    The structural protocol: compile-once weight state, a ``matmul``
    over column-major activations, deployed ``weight_nbytes`` and
    analytic ``op_counts``.  :class:`~repro.core.kernel.BiQGemm`
    satisfies it natively; the other engines are wrapped by the
    adapters in :mod:`repro.engine.adapters`.
:class:`QuantSpec`
    The user-facing description of *how* a layer should quantize and
    compute, including ``backend="auto"`` which defers the choice to
    the cost-model planner in :mod:`repro.engine.dispatch`.
:class:`EngineBuildRequest`
    The compile-time context handed to engine factories: the float
    weight and/or its BCQ quantization, computed once and shared so
    that switching engines never re-runs the quantizer.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Literal, Protocol, runtime_checkable

import numpy as np

from repro.quant.bcq import BCQTensor, bcq_quantize

__all__ = [
    "AUTO_BACKEND",
    "Backend",
    "EngineBuildRequest",
    "MatmulEngine",
    "QuantSpec",
]

AUTO_BACKEND = "auto"
"""Sentinel backend name resolved by the dispatch planner."""

Backend = Literal[
    "auto", "biqgemm", "xnor", "unpack", "container", "dense", "int8",
    "compiled",
]


@runtime_checkable
class MatmulEngine(Protocol):
    """Structural interface of a compiled matmul backend.

    An engine is compiled once from a weight matrix (offline, matching
    the paper's deployment model in which compiled keys -- not float
    weights -- ship with the inference system) and then multiplied any
    number of times.  All engines use the paper's column orientation:
    ``matmul`` consumes ``(n, b)`` activations (or ``(n,)`` vectors)
    and produces ``(m, b)`` outputs.

    Engines return results in the input's floating dtype whenever the
    accumulation allows it (integer inputs are promoted to float64);
    see the adapters for the per-engine dtype notes.

    Engines may additionally implement the **workspace path**::

        matmul_into(x, *, out=None, workspace=None) -> np.ndarray

    writing the product into a caller-provided ``out`` (which must not
    alias ``x``) and drawing every scratch buffer from a
    :class:`~repro.core.workspace.Workspace`, so a steady-state serving
    loop performs no numpy allocations.  The method is optional --
    :func:`~repro.engine.registry.out_capable_engines` lists the
    backends that provide it (their registry entries set
    ``supports_out=True``) and the layer stack falls back to plain
    ``matmul`` transparently for the rest.  Results must be
    bit-identical between the two paths.
    """

    @property
    def shape(self) -> tuple[int, int]:
        """Logical ``(m, n)`` of the represented weight matrix."""
        ...

    @property
    def weight_nbytes(self) -> int | float:
        """Bytes of deployed weight state (keys/planes/codes + scales)."""
        ...

    def matmul(self, x: np.ndarray) -> np.ndarray:
        """Compute ``W_quantized @ x`` for ``(n, b)`` or ``(n,)`` input."""
        ...

    def op_counts(self, batch: int) -> dict[str, float]:
        """Analytic operation counts for one multiply at *batch* columns."""
        ...


@dataclass(frozen=True)
class QuantSpec:
    """How a quantized layer should quantize and compute.

    Attributes
    ----------
    bits:
        BCQ weight bits (paper: 1-3 for weights).
    mu:
        LUT-unit for the BiQGEMM backend.
    method:
        ``"greedy"``, ``"refined"`` or ``"alternating"`` BCQ solver.
    backend:
        Engine selection: any name registered in
        :mod:`repro.engine.registry`, or ``"auto"`` to let the
        cost-model planner choose per shape/batch/machine.
    a_bits:
        Activation bits for the ``xnor`` backend (ignored elsewhere).
    machine:
        :data:`~repro.hw.machine.MACHINES` key the ``"auto"`` planner
        prices candidates on (ignored for concrete backends).
    batch_hint:
        Expected serving batch for ``"auto"`` planning.  ``None`` (the
        default) re-plans per call from the observed batch, so one layer
        can serve both the GEMV decode regime and large-batch scoring
        with the engine that wins each; an int pins the plan.
    planner:
        ``"model"`` prices candidates with the roofline cost model;
        ``"autotune"`` micro-benchmarks them on this host via
        :func:`repro.core.autotune.empirical_backend`.
    fuse:
        Name of the activation fused into the engine's epilogue
        (``"relu"``, ``"gelu"``, ``"sigmoid"`` or ``"tanh"``), or
        ``None`` for a plain matmul.  Only the ``compiled`` backend
        honours it; :meth:`repro.api.model.QuantModel.compile`
        discovers fusion sites from the model structure and sets it.
    """

    bits: int = 3
    mu: int = 8
    method: str = "greedy"
    backend: Backend = "biqgemm"
    a_bits: int = 1
    machine: str = "pc"
    batch_hint: int | None = None
    planner: Literal["model", "autotune"] = "model"
    fuse: str | None = None


@dataclass
class EngineBuildRequest:
    """Compile-time context shared by every engine factory.

    Holds the float weight and/or its BCQ quantization.  The BCQ solve
    (the expensive offline step) runs at most once per request, no
    matter how many engines are built from it -- the property that lets
    an ``"auto"`` layer keep compiled engines for several backends
    without re-quantizing.

    Either *weight* or *bcq* must be provided; engines that need the
    original float weight (``int8``, which quantizes on a uniform grid
    rather than from the BCQ components) raise when only *bcq* exists.
    """

    spec: QuantSpec
    weight: np.ndarray | None = None
    bcq: BCQTensor | None = field(default=None)
    # Layer bias, for engines with a fused epilogue (``compiled``);
    # engines without one ignore it and the layer adds bias itself.
    bias: np.ndarray | None = None
    # Serving replicas share one request across worker threads; the lock
    # keeps the lazy BCQ solve single-flight.
    _lock: threading.Lock = field(
        default_factory=threading.Lock, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.weight is None and self.bcq is None:
            raise ValueError("EngineBuildRequest needs a weight or a BCQTensor")
        if self.weight is not None:
            arr = np.asarray(self.weight, dtype=np.float64)
            if arr.ndim != 2:
                raise ValueError(
                    f"weight must be 2-D, got shape {arr.shape}"
                )
            self.weight = arr

    @property
    def shape(self) -> tuple[int, int]:
        """Logical ``(m, n)`` of the weight being compiled."""
        if self.weight is not None:
            return (int(self.weight.shape[0]), int(self.weight.shape[1]))
        return self.bcq.shape  # type: ignore[union-attr]

    def get_bcq(self) -> BCQTensor:
        """The BCQ quantization, solving it (once, thread-safely) on
        first access."""
        if self.bcq is None:
            with self._lock:
                if self.bcq is None:
                    self.bcq = bcq_quantize(
                        self.weight, self.spec.bits, method=self.spec.method
                    )
        return self.bcq

    def get_weight(self) -> np.ndarray:
        """The original float weight; raises if only BCQ state exists."""
        if self.weight is None:
            raise ValueError(
                "this engine needs the original float weight, but the "
                "build request only carries a BCQTensor"
            )
        return self.weight

    def release_weight(self) -> None:
        """Drop the float weight, keeping only the quantized state.

        Matches the paper's deployment model (only compiled state
        ships); callers do this once no reachable backend
        :func:`~repro.engine.registry.weight_required` the original.
        Quantizes first if that has not happened yet.
        """
        self.get_bcq()
        self.weight = None
