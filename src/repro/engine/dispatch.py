"""Cost-model-driven backend planning (the paper's Section V lesson).

No single engine wins everywhere: BiQGEMM dominates the small-batch
GEMV-like regime the paper targets, a tuned BLAS overtakes it once the
batch amortizes the weight traffic (Fig. 10's crossovers), and the
exact crossover moves with bit width and machine.  This module turns
that observation into a planner:

:func:`plan_backend` / :func:`dispatch`
    Rank the lossless registered engines by their roofline cost on a
    :class:`~repro.hw.machine.MachineConfig` and return the cheapest --
    the resolver behind ``QuantSpec(backend="auto")``.
:func:`resolve_backend`
    The layer-facing entry point: passes concrete backend names
    through untouched and plans only for ``"auto"``, so layers carry
    no backend conditionals at all.
:func:`crossover_batch`
    The batch size at which the plan switches away from BiQGEMM -- the
    quantity Fig. 10 plots.

Plans are memoized in a process-wide cache keyed on
``(m, n, bits, mu, batch-bucket, machine, planner)``.  Batches are
bucketed to powers of two, so a serving loop whose batch jitters
between 17 and 32 hits one cache line instead of replanning per call;
repeated calls cost one dict lookup.

With ``planner="autotune"`` the ranking falls back to micro-benchmarks
of the real kernels on this host
(:func:`repro.core.autotune.empirical_backend`), for when the machine
being served is not one of the modelled Table III configs.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro._util import check_positive_int
from repro.engine.base import AUTO_BACKEND, QuantSpec
from repro.engine.registry import engine_entry, lossless_engines
from repro.hw.costmodel import CostEstimate
from repro.hw.machine import MACHINES, MachineConfig

__all__ = [
    "batch_bucket",
    "batch_buckets",
    "clear_plan_cache",
    "crossover_batch",
    "dispatch",
    "plan_backend",
    "plan_cache_stats",
    "plan_costs",
    "resolve_backend",
    "validate_spec",
]


def validate_spec(spec: QuantSpec) -> QuantSpec:
    """Fail fast on spec fields the registry or planner would reject later.

    Layers and configs call this at construction so that a typo'd
    backend, machine, or planner surfaces immediately rather than on the
    first multiply.  Returns *spec* unchanged for call-chaining.
    """
    if spec.planner not in ("model", "autotune"):
        raise ValueError(
            f"planner must be 'model' or 'autotune', got {spec.planner!r}"
        )
    if spec.batch_hint is not None:
        check_positive_int(spec.batch_hint, "batch_hint")
    fuse = getattr(spec, "fuse", None)
    if fuse is not None:
        from repro.nn.functional import activation_fn

        activation_fn(fuse)  # raises on unknown activation names
    if spec.backend != AUTO_BACKEND:
        engine_entry(spec.backend)  # raises on unknown backend names
        return spec
    if spec.machine not in MACHINES:
        raise ValueError(
            f"unknown machine {spec.machine!r}; expected one of "
            f"{sorted(MACHINES)}"
        )
    return spec


def batch_bucket(batch: int) -> int:
    """Round *batch* up to the next power of two (the plan-cache key).

    Bucketing keeps the cache small and plans stable under the small
    batch jitter of a serving loop, at the price of planning for a
    batch at most 2x the true one -- well inside the cost model's
    accuracy.
    """
    check_positive_int(batch, "batch")
    return 1 << (batch - 1).bit_length()


def batch_buckets(max_batch: int = 1024) -> tuple[int, ...]:
    """All plan-cache bucket boundaries up to ``batch_bucket(max_batch)``.

    The serving layer coalesces micro-batches toward these targets
    (:class:`repro.serve.Batcher`): a batch released exactly at a bucket
    boundary shares its plan-cache line -- and its cost-model pricing --
    with every other batch in the bucket, so the batcher and the planner
    agree about which regime is being served.
    """
    check_positive_int(max_batch, "max_batch")
    top = batch_bucket(max_batch)
    return tuple(1 << i for i in range(top.bit_length()))


def _resolve_machine(machine: str | MachineConfig | None) -> MachineConfig:
    if machine is None:
        machine = "pc"
    if isinstance(machine, MachineConfig):
        return machine
    try:
        return MACHINES[machine]
    except KeyError:
        raise ValueError(
            f"unknown machine {machine!r}; expected one of {sorted(MACHINES)}"
        ) from None


@dataclass(frozen=True)
class _PlanKey:
    m: int
    n: int
    bits: int
    mu: int
    # a_bits only matters when xnor is in the candidate set, but a
    # stale hit there silently picks a lossy engine -- key on it.
    a_bits: int
    bucket: int
    # The full (frozen, hashable) machine config, not just its name:
    # custom or modified configs must never share a cache line with the
    # stock machine they were derived from.
    machine: MachineConfig
    planner: str
    candidates: tuple[str, ...]
    # A fused and an unfused plan for the same (m, n, bits) must never
    # share a cache line: the compiled engine's fusion credit changes
    # the cost ranking.
    fuse: str | None = None


_PLAN_CACHE: dict[_PlanKey, str] = {}
_CACHE_LOCK = threading.Lock()
_CACHE_STATS = {"hits": 0, "misses": 0}


def clear_plan_cache() -> None:
    """Drop all memoized plans (test hygiene / after re-registration)."""
    with _CACHE_LOCK:
        _PLAN_CACHE.clear()
        _CACHE_STATS["hits"] = 0
        _CACHE_STATS["misses"] = 0


def plan_cache_stats() -> dict[str, int]:
    """Cache observability: ``{"size", "hits", "misses"}``."""
    with _CACHE_LOCK:
        return {
            "size": len(_PLAN_CACHE),
            "hits": _CACHE_STATS["hits"],
            "misses": _CACHE_STATS["misses"],
        }


def plan_costs(
    m: int,
    n: int,
    *,
    spec: QuantSpec | None = None,
    batch_hint: int = 1,
    machine: str | MachineConfig | None = None,
    candidates: tuple[str, ...] | None = None,
) -> dict[str, CostEstimate]:
    """Roofline estimate per candidate backend (the planner's evidence).

    Returns ``{backend: CostEstimate}`` for every candidate with a cost
    function, unranked -- benches and tests use this to show *why* a
    plan was chosen.
    """
    check_positive_int(m, "m")
    check_positive_int(n, "n")
    check_positive_int(batch_hint, "batch_hint")
    spec = spec or QuantSpec()
    mc = _resolve_machine(machine if machine is not None else spec.machine)
    names = candidates if candidates is not None else lossless_engines()
    if not names:
        raise ValueError("no candidate backends to plan over")
    out: dict[str, CostEstimate] = {}
    for name in names:
        entry = engine_entry(name)
        if entry.cost is None:
            continue
        out[name] = entry.cost(mc, m, n, batch_hint, spec)
    if not out:
        raise ValueError(
            f"none of the candidates {list(names)} have a cost function"
        )
    return out


def plan_backend(
    m: int,
    n: int,
    *,
    spec: QuantSpec | None = None,
    batch_hint: int = 1,
    machine: str | MachineConfig | None = None,
    candidates: tuple[str, ...] | None = None,
    use_cache: bool = True,
) -> str:
    """Choose the cheapest backend for an ``(m, n)`` layer at a batch.

    Candidates default to the lossless registered engines, so planning
    never trades accuracy silently.  ``spec.planner="autotune"``
    replaces the cost model with host micro-benchmarks.  Results are
    memoized per ``(shape, bits, mu, batch-bucket, machine, planner)``.
    """
    check_positive_int(m, "m")
    check_positive_int(n, "n")
    check_positive_int(batch_hint, "batch_hint")
    spec = spec or QuantSpec()
    mc = _resolve_machine(machine if machine is not None else spec.machine)
    names = candidates if candidates is not None else lossless_engines()
    key = _PlanKey(
        m=m,
        n=n,
        bits=spec.bits,
        mu=spec.mu,
        a_bits=spec.a_bits,
        bucket=batch_bucket(batch_hint),
        machine=mc,
        planner=spec.planner,
        candidates=tuple(names),
        fuse=getattr(spec, "fuse", None),
    )
    if use_cache:
        with _CACHE_LOCK:
            cached = _PLAN_CACHE.get(key)
            if cached is not None:
                _CACHE_STATS["hits"] += 1
                return cached
            _CACHE_STATS["misses"] += 1
    if spec.planner == "autotune":
        from repro.core.autotune import empirical_backend

        choice, _ = empirical_backend(
            m,
            n,
            key.bucket,
            bits=spec.bits,
            mu=spec.mu,
            candidates=names,
        )
    elif spec.planner == "model":
        costs = plan_costs(
            m,
            n,
            spec=spec,
            batch_hint=key.bucket,
            machine=mc,
            candidates=names,
        )
        choice = min(costs, key=lambda name: costs[name].seconds)
        from repro.obs import runtime as _rt

        if _rt.DRIFT:
            # Drift telemetry: park every candidate's predicted price
            # on the (engine, shape-bucket) key the traced layer path
            # will later attach measured wall time to.  Cache misses
            # only, so the hot (cached) path never reaches here.
            from repro.obs.drift import record_prediction

            source = machine if machine is not None else spec.machine
            machine_key = source if isinstance(source, str) else mc.name
            for backend, estimate in costs.items():
                record_prediction(
                    backend,
                    m,
                    n,
                    spec.bits,
                    key.bucket,
                    estimate.seconds,
                    mu=spec.mu,
                    a_bits=spec.a_bits,
                    machine=machine_key,
                )
    else:
        raise ValueError(
            f"planner must be 'model' or 'autotune', got {spec.planner!r}"
        )
    if use_cache:
        with _CACHE_LOCK:
            _PLAN_CACHE[key] = choice
    return choice


def dispatch(
    shape: tuple[int, int],
    bits: int = 3,
    batch_hint: int = 1,
    machine: str | MachineConfig | None = None,
    **kwargs,
) -> str:
    """Plan a backend from a bare ``(m, n)`` shape (convenience form).

    Equivalent to :func:`plan_backend` with a default
    :class:`~repro.engine.base.QuantSpec` at *bits*; extra keyword
    arguments (``mu``, ``method``, ...) override spec fields.
    """
    m, n = shape
    spec = QuantSpec(bits=bits, **kwargs)
    return plan_backend(m, n, spec=spec, batch_hint=batch_hint, machine=machine)


def resolve_backend(
    spec: QuantSpec, m: int, n: int, batch: int = 1
) -> str:
    """Resolve a spec to a concrete backend name for one multiply.

    Concrete backends pass through; ``"auto"`` plans at
    ``spec.batch_hint`` when set (a stable choice for the whole layer
    lifetime) or at the observed *batch* otherwise (per-call regime
    switching, served from the plan cache).
    """
    if spec.backend != AUTO_BACKEND:
        return spec.backend
    hint = spec.batch_hint if spec.batch_hint is not None else batch
    return plan_backend(m, n, spec=spec, batch_hint=hint)


def crossover_batch(
    m: int,
    n: int,
    *,
    spec: QuantSpec | None = None,
    machine: str | MachineConfig | None = None,
    max_batch: int = 1024,
) -> int | None:
    """Smallest power-of-two batch at which the plan leaves BiQGEMM.

    This is the paper's Fig. 10 crossover -- the batch where the dense
    baseline catches the LUT kernel.  Returns ``None`` when BiQGEMM is
    still planned at *max_batch* (the small-``bits`` regime where it
    never loses within range).
    """
    check_positive_int(max_batch, "max_batch")
    spec = spec or QuantSpec()
    b = 1
    while b <= max_batch:
        plan = plan_backend(m, n, spec=spec, batch_hint=b, machine=machine)
        if plan != "biqgemm":
            return b
        b *= 2
    return None
