"""Registrations adapting every engine in the repo to the protocol.

Importing this module (which ``repro.engine`` does) populates the
registry with the six backends the paper's evaluation compares:

``biqgemm``
    :class:`repro.core.kernel.BiQGemm` -- satisfies the protocol
    natively, registered as-is.
``dense``
    Dequantize once, BLAS forever; numerically identical to
    ``biqgemm`` and its oracle in tests.
``container``
    The paper's sGEMM: one binary component per 32-bit container,
    ``bits`` dense BLAS planes, no quantization benefit.
``unpack``
    Bit-packed planes decoded per call (paper Algorithm 3) then BLAS.
``xnor``
    XNOR-popcount with on-the-fly activation quantization (Eq. 3);
    *lossy*, never an ``auto`` candidate.
``int8``
    Uniform fixed-point GEMM with dynamic activation quantization
    (Section II-A); *lossy*, never an ``auto`` candidate.

Dtype convention: every adapter returns results in the input's
floating dtype (integer/bool inputs promote to float64), matching
:meth:`BiQGemm.matmul`.  Accumulators are allocated in that dtype --
float32 activations stay float32 end to end.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro._util import ceil_div, check_matmul_out, check_positive_int
from repro.core.kernel import BiQGemm
from repro.engine.base import EngineBuildRequest, QuantSpec
from repro.engine.registry import EngineEntry, register_engine
from repro.gemm.int8 import Int8Gemm
from repro.gemm.packed import gemm_with_unpack, unpack_flop_count
from repro.gemm.sgemm import sgemm_container
from repro.gemm.xnor import XnorGemm
from repro.hw.costmodel import estimate_backend
from repro.quant.bcq import BCQTensor
from repro.quant.packing import pack_bits

__all__ = [
    "ContainerGemmEngine",
    "DenseGemmEngine",
    "Int8MatmulEngine",
    "UnpackGemmEngine",
    "XnorMatmulEngine",
]


def _float_dtype(x: np.ndarray) -> np.dtype:
    """The result dtype for input *x*: its own if floating, else f64."""
    if np.issubdtype(x.dtype, np.floating):
        return x.dtype
    return np.dtype(np.float64)


def _as_cols(x: np.ndarray, n: int) -> tuple[np.ndarray, bool]:
    """Validate paper-orientation input and report vector-ness."""
    arr = np.asarray(x)
    vector_in = arr.ndim == 1
    if vector_in:
        arr = arr[:, None]
    if arr.ndim != 2 or arr.shape[0] != n:
        raise ValueError(
            f"x must be ({n}, b) or ({n},), got shape {np.asarray(x).shape}"
        )
    return arr, vector_in


def _cost_fn(backend: str):
    def cost(machine, m: int, n: int, b: int, spec: QuantSpec):
        return estimate_backend(
            backend,
            machine,
            m,
            n,
            b,
            bits=spec.bits,
            mu=spec.mu,
            a_bits=spec.a_bits,
        )

    return cost


def _bcq_state(bcq: BCQTensor) -> dict:
    return {"binary": bcq.binary, "alphas": bcq.alphas}


def _bcq_from_state(state: Mapping) -> BCQTensor:
    return BCQTensor(
        alphas=np.asarray(state["alphas"]),
        binary=np.asarray(state["binary"]),
    )


# ----------------------------------------------------------------------
# biqgemm -- the paper's kernel, protocol-native
# ----------------------------------------------------------------------
def _build_biqgemm(request: EngineBuildRequest) -> BiQGemm:
    engine = BiQGemm.from_bcq(request.get_bcq(), mu=request.spec.mu)
    # Layer engines are batch-invariant by contract: the serving layer
    # coalesces requests and splits outputs per request, and those must
    # be bit-identical to a direct CompiledModel call -- so the whole
    # layer stack, not just serving replicas, pins the deterministic
    # (DP-builder / loop-query) execution.  Direct kernel users keep
    # the measured-faster per-batch heuristics.
    engine.batch_invariant = True
    return engine


def _export_biqgemm(engine: BiQGemm) -> dict:
    return {
        "keys": engine.key_matrix.keys,
        "alphas": engine.alphas,
        "mu": int(engine.mu),
        "n": int(engine.shape[1]),
    }


def _restore_biqgemm(state: Mapping) -> BiQGemm:
    from repro.core.keys import KeyMatrix

    km = KeyMatrix(
        keys=np.asarray(state["keys"]), mu=int(state["mu"]), n=int(state["n"])
    )
    engine = BiQGemm(km, alphas=np.asarray(state["alphas"]))
    engine.batch_invariant = True
    return engine


register_engine(
    EngineEntry(
        name="biqgemm",
        build=_build_biqgemm,
        cost=_cost_fn("biqgemm"),
        lossless=True,
        supports_out=True,
        description="lookup-table GEMM over compiled keys (the paper)",
        export=_export_biqgemm,
        restore=_restore_biqgemm,
    )
)


# ----------------------------------------------------------------------
# dense -- dequantize once, BLAS forever
# ----------------------------------------------------------------------
class DenseGemmEngine:
    """Dequantized-weight BLAS GEMM (the Fig. 10 baseline)."""

    backend_name = "dense"

    def __init__(self, bcq: BCQTensor):
        self._bcq = bcq
        self._weight = bcq.dequantize()
        # Weight re-cast per activation dtype, cached (float64 maps to
        # the original array, astype(copy=False)).
        self._weight_cache: dict[np.dtype, np.ndarray] = {}
        m, n = bcq.shape
        self._shape = (m, n)
        # One float32 word per weight (deployed form) plus the scales,
        # matching the historical QuantLinear accounting.
        self._nbytes = m * n * 4 + bcq.alphas.nbytes

    @property
    def shape(self) -> tuple[int, int]:
        return self._shape

    @property
    def bcq(self) -> BCQTensor:
        """The quantization this engine was compiled from."""
        return self._bcq

    @property
    def weight_nbytes(self) -> int:
        return self._nbytes

    def _weight_for(self, dtype: np.dtype) -> np.ndarray:
        w = self._weight_cache.get(dtype)
        if w is None:
            w = self._weight.astype(dtype, copy=False)
            self._weight_cache[dtype] = w
        return w

    def matmul(self, x: np.ndarray) -> np.ndarray:
        arr, vector_in = _as_cols(x, self._shape[1])
        dtype = _float_dtype(arr)
        out = self._weight_for(dtype) @ arr.astype(dtype, copy=False)
        return out[:, 0] if vector_in else out

    def matmul_into(
        self,
        x: np.ndarray,
        *,
        out: np.ndarray | None = None,
        workspace=None,
    ) -> np.ndarray:
        """BLAS GEMM straight into *out* (or a workspace buffer)."""
        arr, vector_in = _as_cols(x, self._shape[1])
        dtype = _float_dtype(arr)
        m = self._shape[0]
        batch = arr.shape[1]
        if out is None:
            if workspace is not None:
                out = workspace.acquire("dense.out", (m, batch), dtype)
                out2 = out
            else:
                out = np.empty((m, batch), dtype=dtype)
                out2 = out
            vector_out = vector_in
        else:
            out2 = check_matmul_out(out, m, batch, dtype, arr, vector_in)
            vector_out = False
        w = self._weight_for(dtype)
        arr = arr.astype(dtype, copy=False)
        if out2.flags.c_contiguous:
            np.matmul(w, arr, out=out2)
        else:
            # BLAS reassociates (and slows down) for strided
            # destinations; compute into a contiguous scratch and copy,
            # keeping matmul_into bit-identical to ``w @ arr``.
            if workspace is not None:
                tmp = workspace.acquire("dense.tmp", (m, batch), dtype)
            else:
                tmp = np.empty((m, batch), dtype=dtype)
            np.matmul(w, arr, out=tmp)
            np.copyto(out2, tmp)
            if workspace is not None:
                workspace.release(tmp)
        return out2[:, 0] if vector_out else out

    def op_counts(self, batch: int) -> dict[str, float]:
        check_positive_int(batch, "batch")
        m, n = self._shape
        return {"flops": 2.0 * m * n * batch}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DenseGemmEngine(m={self._shape[0]}, n={self._shape[1]})"


register_engine(
    EngineEntry(
        name="dense",
        build=lambda request: DenseGemmEngine(request.get_bcq()),
        cost=_cost_fn("dense"),
        lossless=True,
        supports_out=True,
        description="dequantize once, dense BLAS GEMM",
        export=lambda engine: _bcq_state(engine.bcq),
        restore=lambda state: DenseGemmEngine(_bcq_from_state(state)),
    )
)


# ----------------------------------------------------------------------
# container -- the paper's sGEMM scenario
# ----------------------------------------------------------------------
class ContainerGemmEngine:
    """Binary components stored one per 32-bit container, plain BLAS."""

    backend_name = "container"

    def __init__(self, bcq: BCQTensor):
        self._bcq = bcq
        self._shape = bcq.shape

    @property
    def shape(self) -> tuple[int, int]:
        return self._shape

    @property
    def bcq(self) -> BCQTensor:
        """The quantization this engine was compiled from."""
        return self._bcq

    @property
    def weight_nbytes(self) -> int:
        bits, m, n = self._bcq.binary.shape
        return bits * m * n * 4 + self._bcq.alphas.nbytes

    def matmul(self, x: np.ndarray) -> np.ndarray:
        arr, vector_in = _as_cols(x, self._shape[1])
        dtype = _float_dtype(arr)
        out = sgemm_container(self._bcq.binary, arr, self._bcq.alphas)
        out = out.astype(dtype, copy=False)
        return out[:, 0] if vector_in else out

    def matmul_into(
        self,
        x: np.ndarray,
        *,
        out: np.ndarray | None = None,
        workspace=None,
    ) -> np.ndarray:
        """sGEMM with the container planes and accumulator arena-backed."""
        arr, vector_in = _as_cols(x, self._shape[1])
        dtype = _float_dtype(arr)
        m = self._shape[0]
        batch = arr.shape[1]
        acc = sgemm_container(
            self._bcq.binary, arr, self._bcq.alphas, workspace=workspace
        )
        if out is None:
            if workspace is not None:
                out2 = workspace.acquire("container.out", (m, batch), dtype)
            else:
                out2 = np.empty((m, batch), dtype=dtype)
            out = out2
            vector_out = vector_in
        else:
            out2 = check_matmul_out(out, m, batch, dtype, arr, vector_in)
            vector_out = False
        # Same float64 accumulation as matmul, cast into the
        # destination dtype on the way out (bit-identical).
        np.copyto(out2, acc, casting="same_kind")
        if workspace is not None:
            workspace.release(acc)
        return out2[:, 0] if vector_out else out

    def op_counts(self, batch: int) -> dict[str, float]:
        check_positive_int(batch, "batch")
        m, n = self._shape
        return {"flops": 2.0 * m * n * batch * self._bcq.bits}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        m, n = self._shape
        return f"ContainerGemmEngine(m={m}, n={n}, bits={self._bcq.bits})"


register_engine(
    EngineEntry(
        name="container",
        build=lambda request: ContainerGemmEngine(request.get_bcq()),
        cost=_cost_fn("container"),
        lossless=True,
        supports_out=True,
        description="sGEMM: one binary weight per 32-bit container",
        export=lambda engine: _bcq_state(engine.bcq),
        restore=lambda state: ContainerGemmEngine(_bcq_from_state(state)),
    )
)


# ----------------------------------------------------------------------
# unpack -- bit-packed planes decoded per call (Algorithm 3)
# ----------------------------------------------------------------------
class UnpackGemmEngine:
    """Bit-packed weight planes unpacked per call then BLAS-multiplied.

    The accumulator is allocated in the input's floating dtype, so
    float32 activations are *not* silently upcast to float64 (the other
    engines already preserved dtype; this one historically did not).
    """

    backend_name = "unpack"

    def __init__(self, bcq: BCQTensor):
        self._bcq = bcq
        self._shape = bcq.shape
        self._packed = [pack_bits(bcq.binary[i]) for i in range(bcq.bits)]

    @property
    def shape(self) -> tuple[int, int]:
        return self._shape

    @property
    def bcq(self) -> BCQTensor:
        """The quantization this engine was compiled from."""
        return self._bcq

    @property
    def weight_nbytes(self) -> int:
        return sum(p.nbytes for p in self._packed) + self._bcq.alphas.nbytes

    def matmul(self, x: np.ndarray) -> np.ndarray:
        arr, vector_in = _as_cols(x, self._shape[1])
        dtype = _float_dtype(arr)
        arr = arr.astype(dtype, copy=False)
        alphas = self._bcq.alphas.astype(dtype, copy=False)
        out = np.zeros((self._shape[0], arr.shape[1]), dtype=dtype)
        for i, packed in enumerate(self._packed):
            out += alphas[i][:, None] * gemm_with_unpack(packed, arr)
        return out[:, 0] if vector_in else out

    def matmul_into(
        self,
        x: np.ndarray,
        *,
        out: np.ndarray | None = None,
        workspace=None,
    ) -> np.ndarray:
        """Per-plane unpack-and-multiply with arena-backed intermediates.

        Algorithm 3's bit extraction still allocates internally (see
        :func:`~repro.gemm.packed.gemm_with_unpack`); the float plane,
        per-plane product and accumulator stop churning.
        """
        arr, vector_in = _as_cols(x, self._shape[1])
        dtype = _float_dtype(arr)
        m = self._shape[0]
        batch = arr.shape[1]
        arr = arr.astype(dtype, copy=False)
        alphas = self._bcq.alphas.astype(dtype, copy=False)
        if out is None:
            if workspace is not None:
                out2 = workspace.acquire(
                    "unpack.out", (m, batch), dtype, zero=True
                )
            else:
                out2 = np.zeros((m, batch), dtype=dtype)
            out = out2
            vector_out = vector_in
        else:
            out2 = check_matmul_out(out, m, batch, dtype, arr, vector_in)
            out2[...] = 0
            vector_out = False
        if workspace is not None:
            prod = workspace.acquire("unpack.prod", (m, batch), dtype)
            scaled = workspace.acquire("unpack.scaled", (m, batch), dtype)
        else:
            prod = np.empty((m, batch), dtype=dtype)
            scaled = np.empty((m, batch), dtype=dtype)
        for i, packed in enumerate(self._packed):
            gemm_with_unpack(packed, arr, out=prod, workspace=workspace)
            np.multiply(alphas[i][:, None], prod, out=scaled)
            out2 += scaled
        if workspace is not None:
            workspace.release(prod)
            workspace.release(scaled)
        return out2[:, 0] if vector_out else out

    def op_counts(self, batch: int) -> dict[str, float]:
        check_positive_int(batch, "batch")
        m, n = self._shape
        bits = self._bcq.bits
        return {
            "flops": 2.0 * m * n * batch * bits,
            "unpack_ops": float(bits * unpack_flop_count(m, n)),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        m, n = self._shape
        return f"UnpackGemmEngine(m={m}, n={n}, bits={self._bcq.bits})"


register_engine(
    EngineEntry(
        name="unpack",
        build=lambda request: UnpackGemmEngine(request.get_bcq()),
        cost=_cost_fn("unpack"),
        lossless=True,
        supports_out=True,
        description="bit-packed planes, Algorithm 3 decode then BLAS",
        export=lambda engine: _bcq_state(engine.bcq),
        restore=lambda state: UnpackGemmEngine(_bcq_from_state(state)),
    )
)


# ----------------------------------------------------------------------
# xnor -- bit-logic GEMM with quantized activations (lossy)
# ----------------------------------------------------------------------
class XnorMatmulEngine:
    """XNOR-popcount GEMM with the activation bit width bound at build.

    Lossy: activations are greedily binary-coded per call (paper Eq. 3),
    so ``auto`` never selects it -- it must be requested explicitly.
    """

    backend_name = "xnor"

    def __init__(self, bcq: BCQTensor, *, a_bits: int = 1):
        check_positive_int(a_bits, "a_bits", upper=8)
        self._bcq = bcq
        self._a_bits = a_bits
        self._inner = XnorGemm(bcq.binary, bcq.alphas)
        self._shape = bcq.shape

    @property
    def shape(self) -> tuple[int, int]:
        return self._shape

    @property
    def bcq(self) -> BCQTensor:
        """The quantization this engine was compiled from."""
        return self._bcq

    @property
    def a_bits(self) -> int:
        """Activation bit planes quantized per call."""
        return self._a_bits

    @property
    def weight_nbytes(self) -> int:
        return self._inner.weight_nbytes

    def matmul(self, x: np.ndarray) -> np.ndarray:
        arr = np.asarray(x)
        dtype = _float_dtype(arr)
        out = self._inner.matmul(arr, a_bits=self._a_bits)
        return out.astype(dtype, copy=False)

    def op_counts(self, batch: int) -> dict[str, float]:
        check_positive_int(batch, "batch")
        m, n = self._shape
        words = float(self._bcq.bits) * self._a_bits * m * ceil_div(n, 64) * batch
        return {
            "word_ops": 3.0 * words,
            "act_quant_ops": 4.0 * self._a_bits * n * batch,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        m, n = self._shape
        return (
            f"XnorMatmulEngine(m={m}, n={n}, bits={self._bcq.bits}, "
            f"a_bits={self._a_bits})"
        )


def _export_xnor(engine: XnorMatmulEngine) -> dict:
    return {**_bcq_state(engine.bcq), "a_bits": int(engine.a_bits)}


register_engine(
    EngineEntry(
        name="xnor",
        build=lambda request: XnorMatmulEngine(
            request.get_bcq(), a_bits=request.spec.a_bits
        ),
        cost=_cost_fn("xnor"),
        lossless=False,
        description="XNOR-popcount GEMM, activations quantized per call",
        export=_export_xnor,
        restore=lambda state: XnorMatmulEngine(
            _bcq_from_state(state), a_bits=int(state["a_bits"])
        ),
    )
)


# ----------------------------------------------------------------------
# int8 -- uniform fixed-point GEMM (lossy)
# ----------------------------------------------------------------------
class Int8MatmulEngine:
    """Dynamic-quantization INT8 GEMM over the *original* float weight.

    Unlike the BCQ-derived engines, the uniform grid is fitted to the
    float weight directly (paper Section II-A), so building this engine
    requires the original weight in the request; once fitted, only the
    integer codes and scales are retained (and serialized).  Lossy:
    ``auto`` never selects it.
    """

    backend_name = "int8"

    def __init__(
        self,
        weight: np.ndarray | None = None,
        *,
        inner: Int8Gemm | None = None,
    ):
        if (weight is None) == (inner is None):
            raise ValueError("provide exactly one of weight or inner")
        if inner is None:
            inner = Int8Gemm(np.asarray(weight, dtype=np.float64), w_bits=8)
        self._inner = inner
        self._shape = inner.shape

    @property
    def shape(self) -> tuple[int, int]:
        return self._shape

    @property
    def weight_nbytes(self) -> float:
        return self._inner.weight_nbytes

    def dequantized(self) -> np.ndarray:
        """Effective dense weight of the uniform grid."""
        return self._inner.dequantized()

    def matmul(self, x: np.ndarray) -> np.ndarray:
        arr = np.asarray(x)
        dtype = _float_dtype(arr)
        out = self._inner.matmul(arr, a_bits=8)
        return out.astype(dtype, copy=False)

    def op_counts(self, batch: int) -> dict[str, float]:
        check_positive_int(batch, "batch")
        m, n = self._shape
        return {
            "flops": 2.0 * m * n * batch,
            "convert_ops": 4.0 * (n * batch + m * batch),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Int8MatmulEngine(m={self._shape[0]}, n={self._shape[1]})"


def _export_int8(engine: Int8MatmulEngine) -> dict:
    # Ship the fitted grid (codes + scales), never the float weight.
    wq = engine._inner.quantized
    return {
        "q": wq.q,
        "scale": np.asarray(wq.scale),
        "zero_point": np.asarray(wq.zero_point),
        "w_bits": int(wq.bits),
    }


def _restore_int8(state: Mapping) -> Int8MatmulEngine:
    from repro.quant.uniform import UniformQuantized

    wq = UniformQuantized(
        q=np.asarray(state["q"]),
        scale=np.asarray(state["scale"]),
        zero_point=np.asarray(state["zero_point"]),
        bits=int(state["w_bits"]),
    )
    return Int8MatmulEngine(inner=Int8Gemm.from_quantized(wq))


register_engine(
    EngineEntry(
        name="int8",
        build=lambda request: Int8MatmulEngine(request.get_weight()),
        cost=_cost_fn("int8"),
        lossless=False,
        needs_weight=True,
        description="uniform INT8 GEMM, dynamic activation quantization",
        export=_export_int8,
        restore=_restore_int8,
    )
)
