"""Unified engine registry and cost-model-driven dispatch.

The platform layer between the kernels (:mod:`repro.core`,
:mod:`repro.gemm`) and the model substrate (:mod:`repro.nn`): every
matmul backend registers here behind one protocol, and the planner
resolves ``backend="auto"`` per shape/batch/machine with the roofline
cost model -- realising the paper's Section V observation that the
best kernel is situational (BiQGEMM at small batch, BLAS at large).

- :mod:`repro.engine.base` -- :class:`MatmulEngine` protocol,
  :class:`QuantSpec`, :class:`EngineBuildRequest`;
- :mod:`repro.engine.registry` -- string-keyed
  :class:`EngineEntry` registry with build/cost/serialize hooks;
- :mod:`repro.engine.adapters` -- registrations for the six baseline
  engines (``biqgemm``, ``dense``, ``container``, ``unpack``,
  ``xnor``, ``int8``);
- :mod:`repro.engine.compiled` -- the seventh engine: per-shape
  specialized fused traces (``compiled``);
- :mod:`repro.engine.dispatch` -- the planner, its plan cache, and
  the Fig. 10 crossover probe.

>>> import numpy as np
>>> from repro.engine import QuantSpec, dispatch
>>> dispatch((1024, 1024), bits=3, batch_hint=1, machine="pc")
'biqgemm'
>>> dispatch((1024, 1024), bits=3, batch_hint=256, machine="pc")
'dense'
"""

from repro.engine.base import (
    AUTO_BACKEND,
    Backend,
    EngineBuildRequest,
    MatmulEngine,
    QuantSpec,
)
from repro.engine.registry import (
    EngineEntry,
    build_engine,
    engine_entry,
    lossless_engines,
    out_capable_engines,
    register_engine,
    registered_engines,
    spec_candidates,
    weight_required,
)
from repro.engine import adapters as _adapters  # populate the registry
from repro.engine import compiled as _compiled  # the seventh engine
from repro.engine.dispatch import (
    batch_bucket,
    batch_buckets,
    clear_plan_cache,
    crossover_batch,
    dispatch,
    plan_backend,
    plan_cache_stats,
    plan_costs,
    resolve_backend,
    validate_spec,
)

del _adapters
del _compiled

__all__ = [
    "AUTO_BACKEND",
    "Backend",
    "EngineBuildRequest",
    "EngineEntry",
    "MatmulEngine",
    "QuantSpec",
    "batch_bucket",
    "batch_buckets",
    "build_engine",
    "clear_plan_cache",
    "crossover_batch",
    "dispatch",
    "engine_entry",
    "lossless_engines",
    "out_capable_engines",
    "plan_backend",
    "plan_cache_stats",
    "plan_costs",
    "register_engine",
    "registered_engines",
    "resolve_backend",
    "spec_candidates",
    "validate_spec",
    "weight_required",
]
