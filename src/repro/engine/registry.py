"""String-keyed registry of matmul engines.

Every backend this repo implements registers here exactly once (the
registrations live in :mod:`repro.engine.adapters`), carrying:

- a **build** function compiling an engine from an
  :class:`~repro.engine.base.EngineBuildRequest`;
- a **cost** function pricing one ``(m, n) @ (n, b)`` multiply on a
  :class:`~repro.hw.machine.MachineConfig` via the roofline model in
  :mod:`repro.hw.costmodel` -- the signal the dispatch planner ranks
  candidates by;
- a **lossless** flag: whether the engine computes the exact BCQ
  product (Eq. 2).  ``backend="auto"`` only considers lossless engines,
  so the planner never silently trades accuracy for speed (``xnor`` and
  ``int8`` quantize activations and must be chosen explicitly);
- optional **export/restore** hooks used by
  :mod:`repro.core.serialize` to round-trip compiled engines.

The registry is the extension seam for future backends: registering a
new entry makes it buildable through :class:`~repro.nn.linear.QuantLinear`,
plannable through :func:`repro.engine.dispatch.plan_backend`, coverable
by the cross-backend parity tests, and serializable -- with no changes
to the nn layer.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.engine.base import (
    AUTO_BACKEND,
    EngineBuildRequest,
    MatmulEngine,
    QuantSpec,
)
from repro.hw.costmodel import CostEstimate
from repro.hw.machine import MachineConfig

__all__ = [
    "EngineEntry",
    "build_engine",
    "engine_build_counts",
    "engine_entry",
    "lossless_engines",
    "out_capable_engines",
    "register_engine",
    "registered_engines",
    "spec_candidates",
    "weight_required",
]

CostFn = Callable[[MachineConfig, int, int, int, QuantSpec], CostEstimate]
BuildFn = Callable[[EngineBuildRequest], MatmulEngine]
ExportFn = Callable[[MatmulEngine], dict[str, Any]]
RestoreFn = Callable[[Mapping[str, Any]], MatmulEngine]


@dataclass(frozen=True)
class EngineEntry:
    """One registered backend.

    Attributes
    ----------
    name:
        Registry key, the value a :class:`~repro.engine.base.QuantSpec`
        selects with ``backend=name``.
    build:
        Factory compiling a :class:`~repro.engine.base.MatmulEngine`.
    cost:
        Roofline estimate for the dispatch planner; ``None`` opts the
        engine out of cost-model planning (it can still be built and
        autotuned).
    lossless:
        True when the engine reproduces the exact BCQ product; only
        lossless engines are ``"auto"`` candidates.
    auto_candidate:
        True when the engine should be offered to the ``"auto"``
        planner by default.  Specialized engines (``compiled``) set
        this False: they are lossless, but only enter a plan when a
        caller extends the candidate list explicitly (the fusion pass
        in :meth:`repro.api.model.QuantModel.compile` does).
    needs_weight:
        True when ``build`` requires the original float weight (via
        :meth:`~repro.engine.base.EngineBuildRequest.get_weight`)
        rather than building from the shared BCQ state.  Layers use
        this to drop the float weight after quantization whenever no
        reachable backend needs it (the paper's deployment model).
    supports_out:
        True when engines built by this entry implement
        ``matmul_into(x, out=..., workspace=...)`` -- the
        zero-allocation serving path.  Engines without it are served
        through plain ``matmul`` by the layer stack (allocating, but
        numerically identical); the flag lets planners and tests reason
        about the capability without building an engine.
    description:
        One line for docs and error messages.
    export / restore:
        Serialization hooks (arrays/ints only) for
        :mod:`repro.core.serialize`; ``None`` disables round-tripping.
    """

    name: str
    build: BuildFn
    cost: CostFn | None = None
    lossless: bool = True
    auto_candidate: bool = True
    needs_weight: bool = False
    supports_out: bool = False
    description: str = ""
    export: ExportFn | None = None
    restore: RestoreFn | None = None


_REGISTRY: dict[str, EngineEntry] = {}


def register_engine(entry: EngineEntry) -> EngineEntry:
    """Add *entry* to the registry; duplicate names are an error."""
    if not isinstance(entry, EngineEntry):
        raise TypeError(f"expected an EngineEntry, got {type(entry).__name__}")
    if entry.name in _REGISTRY:
        raise ValueError(f"backend {entry.name!r} is already registered")
    _REGISTRY[entry.name] = entry
    return entry


def engine_entry(name: str) -> EngineEntry:
    """Look up one registered backend by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; registered engines: "
            f"{sorted(_REGISTRY)}"
        ) from None


def registered_engines() -> tuple[str, ...]:
    """All registered backend names, sorted."""
    return tuple(sorted(_REGISTRY))


def lossless_engines() -> tuple[str, ...]:
    """Backends computing the exact BCQ product (the ``auto`` candidates).

    Excludes lossless engines registered with ``auto_candidate=False``
    (``compiled``) -- those enter plans only via explicit candidate
    lists, keeping the default planning regimes stable.
    """
    return tuple(
        sorted(
            name
            for name, e in _REGISTRY.items()
            if e.lossless and e.auto_candidate
        )
    )


def out_capable_engines() -> tuple[str, ...]:
    """Backends whose engines implement the ``matmul_into`` workspace
    path (the rest fall back to allocating ``matmul`` transparently)."""
    return tuple(
        sorted(name for name, e in _REGISTRY.items() if e.supports_out)
    )


def spec_candidates(spec: QuantSpec) -> tuple[str, ...]:
    """Backends a spec could resolve to.

    A concrete backend resolves to itself; ``"auto"`` can resolve to
    any lossless engine.
    """
    if spec.backend == AUTO_BACKEND:
        return lossless_engines()
    return (engine_entry(spec.backend).name,)


def weight_required(spec: QuantSpec) -> bool:
    """Whether any backend reachable from *spec* needs the float weight."""
    return any(
        engine_entry(name).needs_weight for name in spec_candidates(spec)
    )


# Engine compiles are rare, heavy, offline-ish events (the paper's
# deployment model builds once and serves forever), so unlike the
# per-call hot paths they are always counted -- the metrics registry's
# default collector publishes these as repro_engine_builds_total.
_BUILD_COUNTS: dict[str, int] = {}
_BUILD_COUNTS_LOCK = threading.Lock()


def engine_build_counts() -> dict[str, int]:
    """Lifetime :func:`build_engine` calls per backend."""
    with _BUILD_COUNTS_LOCK:
        return dict(_BUILD_COUNTS)


def build_engine(name: str, request: EngineBuildRequest) -> MatmulEngine:
    """Compile the backend *name* for *request*."""
    entry = engine_entry(name)
    from repro.obs import runtime as _rt

    if _rt.TRACING:
        from repro.obs.trace import span

        m, n = request.shape
        with span("engine.build", backend=name, m=m, n=n):
            engine = entry.build(request)
    else:
        engine = entry.build(request)
    with _BUILD_COUNTS_LOCK:
        _BUILD_COUNTS[name] = _BUILD_COUNTS.get(name, 0) + 1
    return engine
