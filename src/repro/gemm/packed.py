"""GEMM over bit-packed weights: the paper's Fig. 9 experiment.

Bit packing is mandatory for quantized models to realise their memory
savings, but standard GEMM cannot consume packed words -- bits must be
extracted first (paper Algorithm 3).  Fig. 9 measures three scenarios:

``w/ unpack`` (:func:`gemm_with_unpack`)
    Unpack each packed word into 32 signs, then multiply.  Correct, but
    the bit-level manipulation dominates -- the paper's point is that
    this overhead outweighs the bandwidth saved.
``sGEMM`` (:func:`repro.gemm.sgemm.sgemm_container`)
    One quantized weight per 32-bit container; no packing, no savings.
``w/o unpack`` (:func:`gemm_without_unpack`)
    Multiply the packed words *as if* they were the weights.  The result
    is numerically meaningless (the paper says so explicitly) but the
    traffic pattern is that of the packed model, so the runtime gap to
    sGEMM isolates the bandwidth gain, and the gap to ``w/ unpack``
    isolates the unpacking overhead.
"""

from __future__ import annotations

import numpy as np

from repro.quant.packing import PackedBits, unpack_bits

__all__ = ["gemm_with_unpack", "gemm_without_unpack", "unpack_flop_count"]


def _check_x(packed: PackedBits, x: np.ndarray, n_expected: int) -> np.ndarray:
    xm = np.asarray(x)
    if xm.ndim not in (1, 2):
        raise ValueError(f"x must be 1-D or 2-D, got shape {xm.shape}")
    if xm.shape[0] != n_expected:
        raise ValueError(
            f"x has {xm.shape[0]} rows, packed weights expect {n_expected}"
        )
    return xm


def gemm_with_unpack(
    packed: PackedBits,
    x: np.ndarray,
    *,
    out: np.ndarray | None = None,
    workspace=None,
) -> np.ndarray:
    """Unpack packed binary weights, then BLAS-multiply (correct result).

    ``packed`` must wrap a 2-D ``(m, n)`` binary matrix packed along the
    last axis.  The unpack step is deliberately performed in full before
    the multiply, as a production GEMM would (paper Algorithm 3), so its
    cost is visible to the benchmarks.

    *out* (shape ``(m, b)``, the computation dtype, no aliasing with
    *x*) receives the product in place; *workspace* supplies the float
    expansion of the unpacked plane.  Algorithm 3's bit extraction
    itself still allocates its intermediate words -- unpacking per call
    is this scenario's defining overhead (paper Fig. 9) and the
    workspace path reduces, but cannot eliminate, its churn.
    """
    if not isinstance(packed, PackedBits):
        raise TypeError(f"expected PackedBits, got {type(packed).__name__}")
    if packed.words.ndim != 2:
        raise ValueError(
            f"packed words must be 2-D (m, n_words), got {packed.words.shape}"
        )
    xm = _check_x(packed, x, packed.n)
    dtype = xm.dtype if np.issubdtype(xm.dtype, np.floating) else np.float64
    signs = unpack_bits(packed)
    if workspace is not None:
        unpacked = workspace.acquire(
            "unpack.plane", signs.shape, dtype
        )
        np.copyto(unpacked, signs, casting="unsafe")
    else:
        unpacked = signs.astype(dtype)
    xc = xm.astype(dtype, copy=False)
    try:
        if out is None:
            return unpacked @ xc
        if np.may_share_memory(out, xm):
            raise ValueError("out must not alias x")
        np.matmul(unpacked, xc, out=out)
        return out
    finally:
        if workspace is not None:
            workspace.release(unpacked)


def gemm_without_unpack(packed: PackedBits, x: np.ndarray) -> np.ndarray:
    """Multiply packed words directly: WRONG VALUES, bandwidth probe only.

    Implements the paper's "w/o unpack" scenario: each 32-bit packed word
    is treated as a single scalar weight multiplying the *first*
    activation row of its 32-row block (products of packed scalars and a
    length-32-subsampled input).  The output shape matches the correct
    product but the numbers are meaningless -- callers must treat the
    result as a timing artifact.  A leading underscore-free name is kept
    deliberately close to the paper's terminology; the docstring is the
    warning label.
    """
    if not isinstance(packed, PackedBits):
        raise TypeError(f"expected PackedBits, got {type(packed).__name__}")
    if packed.words.ndim != 2:
        raise ValueError(
            f"packed words must be 2-D (m, n_words), got {packed.words.shape}"
        )
    xm = _check_x(packed, x, packed.n)
    vector_in = xm.ndim == 1
    if vector_in:
        xm = xm[:, None]
    dtype = xm.dtype if np.issubdtype(xm.dtype, np.floating) else np.float64
    # One representative activation row per 32-row block, matching the
    # element count a packed multiply would stream.
    x_sub = xm[:: packed.container_bits].astype(dtype, copy=False)
    w_eff = packed.words.astype(dtype)
    n_words = w_eff.shape[1]
    out = w_eff @ x_sub[:n_words]
    return out[:, 0] if vector_in else out


def unpack_flop_count(m: int, n: int, container_bits: int = 32) -> int:
    """Instruction count of full unpacking (paper Algorithm 3).

    Four scalar ops per extracted weight (shift, mask, multiply,
    subtract) times ``m * n`` weights; used by the cost model to price
    the ``w/ unpack`` scenario.
    """
    if m < 1 or n < 1:
        raise ValueError("m and n must be positive")
    if container_bits < 1:
        raise ValueError("container_bits must be positive")
    return 4 * m * n
