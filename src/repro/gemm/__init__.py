"""Baseline matrix-multiplication engines the paper compares against.

- :mod:`repro.gemm.sgemm` -- dense float GEMM through numpy's BLAS; the
  stand-in for Intel MKL / Eigen / cuBLAS.  Includes the paper's
  "sGEMM" mode (each quantized weight stored alone in a 32-bit
  container, so quantization brings no speedup).
- :mod:`repro.gemm.reference` -- naive and blocked triple-loop GEMM, the
  analogue of the paper's ``kCpu``/``kGpu`` textbook kernels.
- :mod:`repro.gemm.packed` -- GEMM over bit-packed weights *with* the
  unpacking step (correct, slow) and *without* it (incorrect by design;
  the bandwidth probe of the paper's Fig. 9).
- :mod:`repro.gemm.xnor` -- XNOR-popcount GEMM with quantized
  activations (paper Eq. 3 and the ``xnor`` column of Table IV).
- :mod:`repro.gemm.int8` -- fixed-point INT8 GEMM with dynamic
  activation quantization (the uniform-quantization pipeline of paper
  Section II-A).
"""

from repro.gemm.sgemm import sgemm, sgemm_container
from repro.gemm.reference import gemm_reference, gemm_blocked
from repro.gemm.packed import (
    gemm_with_unpack,
    gemm_without_unpack,
    unpack_flop_count,
)
from repro.gemm.xnor import XnorGemm, xnor_popcount_dot
from repro.gemm.int8 import Int8Gemm, quantize_activations_int8

__all__ = [
    "Int8Gemm",
    "quantize_activations_int8",
    "sgemm",
    "sgemm_container",
    "gemm_reference",
    "gemm_blocked",
    "gemm_with_unpack",
    "gemm_without_unpack",
    "unpack_flop_count",
    "XnorGemm",
    "xnor_popcount_dot",
]
