"""Baseline matrix-multiplication kernels the paper compares against.

These are the raw kernels; each one is exposed to the rest of the
system as a registered backend of the :mod:`repro.engine` registry
(the adapter layer in :mod:`repro.engine.adapters`), where the
dispatch planner prices it against BiQGEMM per shape, batch, bit
width and machine.  The registry names are the ones a
:class:`~repro.engine.base.QuantSpec` selects:

``"dense"`` / ``"container"`` (:mod:`repro.gemm.sgemm`)
    Dense float GEMM through numpy's BLAS -- the stand-in for Intel
    MKL / Eigen / cuBLAS.  ``dense`` multiplies the dequantized weight
    (the Fig. 10 baseline); ``container`` is the paper's "sGEMM" mode,
    one binary component per 32-bit container and one BLAS plane per
    bit, so quantization brings no speedup.
``"unpack"`` (:mod:`repro.gemm.packed`)
    GEMM over bit-packed weights *with* the Algorithm 3 unpacking step
    (correct, slow).  The module also implements the *without*-unpack
    scenario (incorrect by design; the bandwidth probe of the paper's
    Fig. 9), which stays a bare kernel -- wrong numbers never get a
    registry entry.
``"xnor"`` (:mod:`repro.gemm.xnor`)
    XNOR-popcount GEMM with quantized activations (paper Eq. 3 and the
    ``xnor`` column of Table IV).  Lossy, so never an ``auto`` choice.
``"int8"`` (:mod:`repro.gemm.int8`)
    Fixed-point INT8 GEMM with dynamic activation quantization (the
    uniform-quantization pipeline of paper Section II-A).  Lossy.

:mod:`repro.gemm.reference` (naive and blocked triple-loop GEMM, the
analogue of the paper's ``kCpu``/``kGpu`` textbook kernels) is kept as
a testing oracle only and is deliberately unregistered.
"""

from repro.gemm.sgemm import sgemm, sgemm_container
from repro.gemm.reference import gemm_reference, gemm_blocked
from repro.gemm.packed import (
    gemm_with_unpack,
    gemm_without_unpack,
    unpack_flop_count,
)
from repro.gemm.xnor import XnorGemm, xnor_popcount_dot
from repro.gemm.int8 import Int8Gemm, quantize_activations_int8

__all__ = [
    "Int8Gemm",
    "quantize_activations_int8",
    "sgemm",
    "sgemm_container",
    "gemm_reference",
    "gemm_blocked",
    "gemm_with_unpack",
    "gemm_without_unpack",
    "unpack_flop_count",
    "XnorGemm",
    "xnor_popcount_dot",
]
