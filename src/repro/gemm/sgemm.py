"""Dense float GEMM baselines (MKL / Eigen / cuBLAS stand-ins).

numpy's ``@`` dispatches to the BLAS the interpreter was built with;
that is this repo's analogue of the vendor libraries the paper measures
(``mkl``, ``eigen``, ``cublas``).  :func:`sgemm_container` realises the
paper's "sGEMM" scenario: quantized weights stored one-per-32-bit
container, i.e. dequantized up front so quantization yields **no**
performance benefit -- the baseline Fig. 10's speedups are normalized
against.
"""

from __future__ import annotations

import numpy as np

from repro._util import as_2d_float, check_binary

__all__ = ["sgemm", "sgemm_container"]


def sgemm(w: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Full-precision GEMM ``w @ x`` via BLAS.

    Shapes follow the paper's orientation: ``w`` is ``(m, n)``, ``x`` is
    ``(n, b)`` (or ``(n,)``), the result is ``(m, b)`` (or ``(m,)``).
    Inputs are promoted to a common float dtype.
    """
    wm = np.asarray(w)
    xm = np.asarray(x)
    if wm.ndim != 2:
        raise ValueError(f"w must be 2-D, got shape {wm.shape}")
    if xm.ndim not in (1, 2):
        raise ValueError(f"x must be 1-D or 2-D, got shape {xm.shape}")
    if wm.shape[1] != xm.shape[0]:
        raise ValueError(
            f"inner dimensions disagree: w is {wm.shape}, x is {xm.shape}"
        )
    dtype = np.result_type(wm.dtype, xm.dtype, np.float32)
    return wm.astype(dtype, copy=False) @ xm.astype(dtype, copy=False)


def sgemm_container(
    binary: np.ndarray,
    x: np.ndarray,
    alphas: np.ndarray | None = None,
    *,
    workspace=None,
) -> np.ndarray:
    """Paper "sGEMM": binary weights stored one per 32-bit container.

    The binary components are expanded to float32 (one value per 32-bit
    word -- 31 bits of storage wasted, exactly the waste the paper
    describes) and multiplied with plain BLAS.  With ``alphas`` given,
    applies the per-row scales of each bit plane (Eq. 2); ``binary`` may
    be ``(m, n)`` or ``(bits, m, n)``.

    *workspace* (a :class:`~repro.core.workspace.Workspace`) supplies
    the per-plane container expansion, the per-plane product and the
    float64 accumulator, so repeat calls stop re-allocating the
    ``(m, n)`` container plane -- by far this scenario's largest
    intermediate.  The result then lives in the arena: valid until the
    workspace resets.
    """
    arr = check_binary(binary, "binary")
    if arr.ndim == 2:
        arr = arr[None, ...]
    if arr.ndim != 3:
        raise ValueError(f"binary must be 2-D or 3-D, got shape {arr.shape}")
    bits, m, n = arr.shape
    if alphas is None:
        alphas_arr = np.ones((bits, m), dtype=np.float64)
    else:
        alphas_arr = np.asarray(alphas, dtype=np.float64)
        if alphas_arr.ndim == 1:
            alphas_arr = alphas_arr[None, :]
        if alphas_arr.shape != (bits, m):
            raise ValueError(
                f"alphas must have shape (bits, m) = ({bits}, {m}), "
                f"got {alphas_arr.shape}"
            )
    xm = np.asarray(x)
    vector_in = xm.ndim == 1
    if vector_in:
        xm = xm[:, None]
    dtype = np.result_type(xm.dtype, np.float32)
    b = xm.shape[1]
    if workspace is not None:
        out = workspace.acquire("sgemm.acc", (m, b), np.float64, zero=True)
        # The container plane is expanded straight into the compute
        # dtype: signs are +-1, exact in every float width, and an
        # f32-keyed buffer would force a full (m, n) astype copy per
        # bit plane whenever the activations are float64.
        plane = workspace.acquire("sgemm.plane", (m, n), dtype)
        prod = workspace.acquire("sgemm.prod", (m, b), dtype)
        scaled = workspace.acquire("sgemm.scaled", (m, b), np.float64)
        xm_c = xm.astype(dtype, copy=False)
        for i in range(bits):
            # The 32-bit container expansion of this bit plane.
            np.copyto(plane, arr[i], casting="unsafe")
            np.matmul(plane, xm_c, out=prod)
            np.multiply(alphas_arr[i][:, None], prod, out=scaled)
            out += scaled
        # Call-scoped scratch goes back to the arena; the accumulator
        # is the caller's result and stays borrowed until they release
        # it (or the workspace resets).
        workspace.release(plane)
        workspace.release(prod)
        workspace.release(scaled)
    else:
        out = np.zeros((m, b), dtype=np.float64)
        for i in range(bits):
            containered = arr[i].astype(np.float32)  # the 32-bit container
            out += alphas_arr[i][:, None] * (containered.astype(dtype) @ xm)
    return out[:, 0] if vector_in else out
