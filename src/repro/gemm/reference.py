"""Textbook GEMM kernels (the paper's ``kCpu`` / ``kGpu`` analogues).

The paper uses the classic triple-loop formulation [51] on CPU and the
Volkov-Demmel sample kernel [53] on GPU as "what a straightforwardly
written kernel achieves" baselines.  :func:`gemm_reference` is the exact
scalar triple loop (kept deliberately unvectorized -- it is the
correctness oracle and the honest lower bound); :func:`gemm_blocked` is
the cache-blocked variant, the usual first optimization and this repo's
``kCpu`` performance stand-in.
"""

from __future__ import annotations

import numpy as np

from repro._util import check_positive_int

__all__ = ["gemm_reference", "gemm_blocked"]


def _validate(w: np.ndarray, x: np.ndarray) -> tuple[np.ndarray, np.ndarray, bool]:
    wm = np.asarray(w, dtype=np.float64)
    xm = np.asarray(x, dtype=np.float64)
    if wm.ndim != 2:
        raise ValueError(f"w must be 2-D, got shape {wm.shape}")
    vector_in = xm.ndim == 1
    if vector_in:
        xm = xm[:, None]
    if xm.ndim != 2:
        raise ValueError(f"x must be 1-D or 2-D, got shape {x.shape}")
    if wm.shape[1] != xm.shape[0]:
        raise ValueError(
            f"inner dimensions disagree: w is {wm.shape}, x is {xm.shape}"
        )
    return wm, xm, vector_in


def gemm_reference(w: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Scalar triple-loop GEMM.  O(m*n*b) Python-level operations.

    Only suitable for small shapes (tests); every other engine in the
    package is validated against this one.
    """
    wm, xm, vector_in = _validate(w, x)
    m, n = wm.shape
    b = xm.shape[1]
    out = np.zeros((m, b), dtype=np.float64)
    for i in range(m):
        for k in range(b):
            acc = 0.0
            for j in range(n):
                acc += wm[i, j] * xm[j, k]
            out[i, k] = acc
    return out[:, 0] if vector_in else out


def gemm_blocked(w: np.ndarray, x: np.ndarray, *, block: int = 64) -> np.ndarray:
    """Cache-blocked GEMM built from small dense sub-products.

    Splits all three loop dimensions into *block*-sized panels and
    accumulates panel products.  The panel products themselves use numpy
    (vectorized), making this the performance analogue of a hand-blocked
    ``kCpu`` kernel rather than a BLAS call.
    """
    check_positive_int(block, "block")
    wm, xm, vector_in = _validate(w, x)
    m, n = wm.shape
    b = xm.shape[1]
    out = np.zeros((m, b), dtype=np.float64)
    for j0 in range(0, n, block):
        j1 = min(j0 + block, n)
        w_panel = wm[:, j0:j1]
        x_panel = xm[j0:j1]
        for i0 in range(0, m, block):
            i1 = min(i0 + block, m)
            for k0 in range(0, b, block):
                k1 = min(k0 + block, b)
                out[i0:i1, k0:k1] += w_panel[i0:i1] @ x_panel[:, k0:k1]
    return out[:, 0] if vector_in else out
