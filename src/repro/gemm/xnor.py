"""XNOR-popcount GEMM (paper Eq. 3 and the ``xnor`` baseline of Table IV).

When *both* operands are binary-coding quantized, a ``{-1,+1}`` dot
product reduces to bit logic: with ``+1 -> 1`` packing,

    dot(w, s) = n - 2 * popcount(w XOR s)

so a multiply-accumulate over ``n`` elements becomes ``n/64`` XOR +
popcount word operations.  Multi-bit operands expand into the double sum
of paper Eq. 3: ``y = sum_i sum_j alpha_i gamma_j (B_i . s_j)``.

The catch the paper emphasizes: activations must be quantized *on the
fly* (the ``gamma_j, s_j`` here are computed per call), which costs
extra work, needs training-side support to preserve accuracy, and is
exactly what BiQGEMM avoids.  The activation-quantization cost is part
of :meth:`XnorGemm.matmul` on purpose.

Padding note: :func:`repro.quant.packing.pack_bits` pads both operands
with bit ``0``; padded positions therefore always match, XOR yields 0
there, and ``n - 2*popcount`` is exact without any correction.
"""

from __future__ import annotations

import numpy as np

from repro._util import check_binary, check_positive_int
from repro.quant.greedy import greedy_bcq
from repro.quant.packing import pack_bits

__all__ = ["XnorGemm", "xnor_popcount_dot"]

_CHUNK_ELEMENTS = 1 << 22
"""Upper bound on the XOR temporary (words) per chunk, ~32 MiB of uint64."""


def xnor_popcount_dot(
    w_words: np.ndarray, s_words: np.ndarray, n: int
) -> np.ndarray:
    """All-pairs ``{-1,+1}`` dot products from packed words.

    Parameters
    ----------
    w_words:
        ``(m, n_words)`` packed weight rows (uint64).
    s_words:
        ``(b, n_words)`` packed activation columns (uint64).
    n:
        True (unpadded) vector length.

    Returns
    -------
    ``(m, b)`` int64 matrix of exact dot products.
    """
    wm = np.asarray(w_words)
    sm = np.asarray(s_words)
    if wm.ndim != 2 or sm.ndim != 2:
        raise ValueError(
            f"packed operands must be 2-D, got {wm.shape} and {sm.shape}"
        )
    if wm.shape[1] != sm.shape[1]:
        raise ValueError(
            f"word counts disagree: {wm.shape[1]} vs {sm.shape[1]}"
        )
    check_positive_int(n, "n")
    m, n_words = wm.shape
    b = sm.shape[0]
    out = np.empty((m, b), dtype=np.int64)
    chunk_b = max(1, _CHUNK_ELEMENTS // max(m * n_words, 1))
    for c0 in range(0, b, chunk_b):
        c1 = min(c0 + chunk_b, b)
        xored = np.bitwise_xor(wm[:, None, :], sm[None, c0:c1, :])
        popc = np.bitwise_count(xored).sum(axis=2, dtype=np.int64)
        out[:, c0:c1] = n - 2 * popc
    return out


class XnorGemm:
    """Bit-logic GEMM over binary-coded weights and activations.

    Weights are packed once at construction; activations are quantized
    and packed per :meth:`matmul` call (the dynamic-quantization overhead
    the paper discusses in Section II).
    """

    def __init__(self, binary: np.ndarray, alphas: np.ndarray | None = None):
        arr = check_binary(binary, "binary")
        if arr.ndim == 2:
            arr = arr[None, ...]
        if arr.ndim != 3:
            raise ValueError(f"binary must be 2-D or 3-D, got shape {arr.shape}")
        self._bits, self._m, self._n = arr.shape
        if alphas is None:
            alphas = np.ones((self._bits, self._m), dtype=np.float64)
        alphas = np.asarray(alphas, dtype=np.float64)
        if alphas.ndim == 1:
            alphas = alphas[None, :]
        if alphas.shape != (self._bits, self._m):
            raise ValueError(
                f"alphas must have shape ({self._bits}, {self._m}), "
                f"got {alphas.shape}"
            )
        self._alphas = alphas
        self._packed = [
            pack_bits(arr[i], container_bits=64).words for i in range(self._bits)
        ]

    @classmethod
    def from_float(
        cls, w: np.ndarray, *, bits: int, method: str = "greedy"
    ) -> "XnorGemm":
        """Quantize a dense float weight matrix and build the engine."""
        from repro.quant.bcq import bcq_quantize

        bcq = bcq_quantize(w, bits, method=method)
        return cls(bcq.binary, bcq.alphas)

    @property
    def shape(self) -> tuple[int, int]:
        """Logical ``(m, n)``."""
        return (self._m, self._n)

    @property
    def weight_bits(self) -> int:
        """Weight quantization bit planes (``beta_w``)."""
        return self._bits

    @property
    def weight_nbytes(self) -> int:
        """Bytes of packed weight words plus scales."""
        return sum(p.nbytes for p in self._packed) + self._alphas.nbytes

    def matmul(self, x: np.ndarray, *, a_bits: int = 1) -> np.ndarray:
        """``W_quantized @ Q(x)`` with *a_bits* activation quantization.

        The activation matrix ``x`` of shape ``(n, b)`` (or ``(n,)``) is
        greedily binary-coded per column into ``a_bits`` planes, packed,
        and combined through XOR-popcount (Eq. 3).  Time complexity
        ``O(beta_w * beta_a * m * (n/64) * b)`` word ops.
        """
        check_positive_int(a_bits, "a_bits", upper=8)
        xm = np.asarray(x, dtype=np.float64)
        vector_in = xm.ndim == 1
        if vector_in:
            xm = xm[:, None]
        if xm.ndim != 2 or xm.shape[0] != self._n:
            raise ValueError(
                f"x must be ({self._n}, b), got shape {np.asarray(x).shape}"
            )
        gammas, s_planes = greedy_bcq(xm, a_bits, axis=0)
        # gammas: (a_bits, b); s_planes: (a_bits, n, b)
        b = xm.shape[1]
        out = np.zeros((self._m, b), dtype=np.float64)
        for j in range(a_bits):
            s_words = pack_bits(
                np.ascontiguousarray(s_planes[j].T), container_bits=64
            ).words  # (b, n_words)
            for i in range(self._bits):
                dots = xnor_popcount_dot(self._packed[i], s_words, self._n)
                out += (
                    self._alphas[i][:, None]
                    * gammas[j][None, :]
                    * dots.astype(np.float64)
                )
        return out[:, 0] if vector_in else out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"XnorGemm(m={self._m}, n={self._n}, bits={self._bits}, "
            f"packed={self.weight_nbytes}B)"
        )
