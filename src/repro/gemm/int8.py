"""Fixed-point INT8 GEMM with dynamic activation quantization.

The uniform-quantization counterpart the paper compares against in
Section II-A and Table I: weights are quantized offline to signed 8-bit
(per-row symmetric grids), activations are quantized *on the fly* per
call (the dynamic step INT8 inference requires), the product is computed
in integer arithmetic, and the result is dequantized back to float.

The paper's criticisms of this scheme are visible in the implementation:

- activations must be quantized per call (extra work, and lossy);
- the float->int->float conversions around every GEMM are the "frequent
  conversions between fixed-point formats and floating-point formats
  [that] would incur 15%~30% computational overhead" [16];
- operations other than the GEMM itself (layernorm, softmax) still need
  float, so the conversions cannot be amortized away.

``repro.hw.costmodel.estimate_int8_gemm`` prices the same pipeline on
the simulated machines.
"""

from __future__ import annotations

import numpy as np

from repro._util import as_2d_float, check_positive_int
from repro.quant.uniform import UniformQuantized, uniform_quantize

__all__ = ["Int8Gemm", "quantize_activations_int8"]


def quantize_activations_int8(
    x: np.ndarray, bits: int = 8
) -> tuple[np.ndarray, np.ndarray]:
    """Symmetric per-column activation quantization (dynamic step).

    Returns ``(codes, scales)`` with ``codes`` int32 of x's shape and
    ``scales`` of shape ``(1, b)``; ``x ~ codes * scales``.
    """
    check_positive_int(bits, "bits", upper=16)
    if bits < 2:
        raise ValueError("activation quantization needs bits >= 2")
    arr = np.asarray(x, dtype=np.float64)
    if arr.ndim != 2:
        raise ValueError(f"x must be 2-D, got shape {arr.shape}")
    qmax = (1 << (bits - 1)) - 1
    amax = np.abs(arr).max(axis=0, keepdims=True)
    scales = np.where(amax > 0, amax / qmax, 1.0)
    codes = np.clip(np.round(arr / scales), -qmax - 1, qmax).astype(np.int32)
    return codes, scales


class Int8Gemm:
    """Integer GEMM engine over uniformly quantized weights.

    Weights are quantized once at construction (per-row symmetric
    ``w_bits`` grid); :meth:`matmul` performs the dynamic activation
    quantization, the int32-accumulated integer product, and the final
    dequantization ``(row_scale x col_scale) * accumulator``.
    """

    def __init__(self, w: np.ndarray, *, w_bits: int = 8):
        mat = as_2d_float(w, "w")
        check_positive_int(w_bits, "w_bits", upper=16)
        if w_bits < 2:
            raise ValueError("weight quantization needs bits >= 2")
        self._m, self._n = map(int, mat.shape)
        self._w_bits = w_bits
        self._wq: UniformQuantized = uniform_quantize(mat, w_bits, per_row=True)

    @classmethod
    def from_quantized(cls, wq: UniformQuantized) -> "Int8Gemm":
        """Rebuild an engine from already-fitted grid state.

        The deserialization path: what ships is the integer codes plus
        scales, never the float weight.
        """
        if not isinstance(wq, UniformQuantized):
            raise TypeError(
                f"expected UniformQuantized, got {type(wq).__name__}"
            )
        if wq.q.ndim != 2:
            raise ValueError(f"codes must be 2-D, got shape {wq.q.shape}")
        check_positive_int(wq.bits, "bits", upper=16)
        if wq.bits < 2:
            raise ValueError("weight quantization needs bits >= 2")
        m = wq.q.shape[0]
        scale = np.asarray(wq.scale)
        zero = np.asarray(wq.zero_point)
        # Per-row or per-tensor grids only -- anything else cannot have
        # come from uniform_quantize and would fail obscurely in matmul.
        if scale.size not in (1, m):
            raise ValueError(
                f"scale has {scale.size} entries, expected 1 or m={m}"
            )
        if zero.shape != scale.shape:
            raise ValueError(
                f"zero_point shape {zero.shape} != scale shape {scale.shape}"
            )
        obj = cls.__new__(cls)
        obj._m, obj._n = map(int, wq.q.shape)
        obj._w_bits = wq.bits
        obj._wq = wq
        return obj

    @property
    def quantized(self) -> UniformQuantized:
        """The fitted weight grid (codes, scales, zero points)."""
        return self._wq

    @property
    def shape(self) -> tuple[int, int]:
        """Logical ``(m, n)``."""
        return (self._m, self._n)

    @property
    def w_bits(self) -> int:
        """Weight grid resolution in bits."""
        return self._w_bits

    @property
    def weight_nbytes(self) -> float:
        """Deployed weight bytes at the nominal bit width plus scales."""
        return self._wq.nbytes_ideal + self._m * 4

    def dequantized(self) -> np.ndarray:
        """The effective dense weight the integer pipeline computes with."""
        return self._wq.dequantize()

    def matmul(self, x: np.ndarray, *, a_bits: int = 8) -> np.ndarray:
        """``Q(w) @ Q(x)`` in integer arithmetic, dequantized to float.

        ``x`` is ``(n, b)`` or ``(n,)``; activations are re-quantized on
        every call (dynamic quantization).  int32 accumulation is exact
        for ``n < 2^31 / (2^{w_bits-1} * 2^{a_bits-1})`` -- about 131k
        inner length at 8/8, far beyond the paper's shapes.
        """
        arr = np.asarray(x, dtype=np.float64)
        vector_in = arr.ndim == 1
        if vector_in:
            arr = arr[:, None]
        if arr.ndim != 2 or arr.shape[0] != self._n:
            raise ValueError(
                f"x must be ({self._n}, b), got shape {np.asarray(x).shape}"
            )
        codes, col_scales = quantize_activations_int8(arr, a_bits)
        acc = self._wq.q.astype(np.int64) @ codes.astype(np.int64)
        row_scales = np.asarray(self._wq.scale).reshape(self._m, 1)
        out = row_scales * col_scales * acc.astype(np.float64)
        return out[:, 0] if vector_in else out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Int8Gemm(m={self._m}, n={self._n}, w_bits={self._w_bits})"
