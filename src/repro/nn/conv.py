"""2-D convolution lowered onto the GEMM engines via im2col.

The binary-coding quantization literature the paper builds on
(XNOR-Net, network sketching, LQ-Nets) targets CNNs; convolution lowers
to exactly the ``W_mat @ cols`` products BiQGEMM accelerates, with
``W_mat`` of shape ``(out_channels, in_channels * kh * kw)`` and one
column per output pixel -- so the *batch* dimension of the paper's
analysis becomes ``N * out_h * out_w``, typically large, which is why
the paper's own evaluation focuses on the small-batch NLP regime while
this module rounds out the substrate.

Layout: NCHW activations, OIHW weights.
"""

from __future__ import annotations

import numpy as np

from repro._util import check_positive_int
from repro.core.kernel import BiQGemm
from repro.nn.linear import QuantSpec
from repro.quant.bcq import bcq_quantize

__all__ = ["im2col", "conv2d_reference", "conv2d_gemm", "QuantConv2d"]


def _out_size(size: int, k: int, stride: int, pad: int) -> int:
    out = (size + 2 * pad - k) // stride + 1
    if out < 1:
        raise ValueError(
            f"kernel {k} with stride {stride}, pad {pad} does not fit "
            f"input extent {size}"
        )
    return out


def im2col(
    x: np.ndarray, kh: int, kw: int, *, stride: int = 1, pad: int = 0
) -> np.ndarray:
    """Unfold NCHW input into convolution columns.

    Returns ``(C * kh * kw, N * out_h * out_w)`` with columns ordered
    image-major then row-major over output pixels -- the orientation the
    GEMM engines consume directly.
    """
    check_positive_int(kh, "kh")
    check_positive_int(kw, "kw")
    check_positive_int(stride, "stride")
    if pad < 0:
        raise ValueError("pad must be >= 0")
    arr = np.asarray(x, dtype=np.float64)
    if arr.ndim != 4:
        raise ValueError(f"x must be NCHW, got shape {arr.shape}")
    n, c, h, w = arr.shape
    oh = _out_size(h, kh, stride, pad)
    ow = _out_size(w, kw, stride, pad)
    if pad:
        arr = np.pad(arr, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    # Gather patches: shape (n, c, kh, kw, oh, ow).
    strides = arr.strides
    shape = (n, c, kh, kw, oh, ow)
    view = np.lib.stride_tricks.as_strided(
        arr,
        shape=shape,
        strides=(
            strides[0],
            strides[1],
            strides[2],
            strides[3],
            strides[2] * stride,
            strides[3] * stride,
        ),
        writeable=False,
    )
    cols = view.reshape(n, c * kh * kw, oh * ow)
    return np.ascontiguousarray(
        cols.transpose(1, 0, 2).reshape(c * kh * kw, n * oh * ow)
    )


def conv2d_reference(
    x: np.ndarray, w: np.ndarray, *, stride: int = 1, pad: int = 0
) -> np.ndarray:
    """Direct-loop convolution oracle (NCHW x OIHW -> NCHW)."""
    xa = np.asarray(x, dtype=np.float64)
    wa = np.asarray(w, dtype=np.float64)
    if xa.ndim != 4 or wa.ndim != 4:
        raise ValueError("x must be NCHW and w must be OIHW")
    n, c, h, wdt = xa.shape
    oc, ic, kh, kw = wa.shape
    if ic != c:
        raise ValueError(f"channel mismatch: input {c}, weight {ic}")
    oh = _out_size(h, kh, stride, pad)
    ow = _out_size(wdt, kw, stride, pad)
    if pad:
        xa = np.pad(xa, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    out = np.zeros((n, oc, oh, ow))
    for img in range(n):
        for o in range(oc):
            for i in range(oh):
                for j in range(ow):
                    patch = xa[
                        img,
                        :,
                        i * stride : i * stride + kh,
                        j * stride : j * stride + kw,
                    ]
                    out[img, o, i, j] = (patch * wa[o]).sum()
    return out


def conv2d_gemm(
    x: np.ndarray, w: np.ndarray, *, stride: int = 1, pad: int = 0
) -> np.ndarray:
    """im2col + dense GEMM convolution (float path)."""
    xa = np.asarray(x, dtype=np.float64)
    wa = np.asarray(w, dtype=np.float64)
    if xa.ndim != 4 or wa.ndim != 4:
        raise ValueError("x must be NCHW and w must be OIHW")
    n, c, h, wdt = xa.shape
    oc, ic, kh, kw = wa.shape
    if ic != c:
        raise ValueError(f"channel mismatch: input {c}, weight {ic}")
    oh = _out_size(h, kh, stride, pad)
    ow = _out_size(wdt, kw, stride, pad)
    cols = im2col(xa, kh, kw, stride=stride, pad=pad)
    w_mat = wa.reshape(oc, ic * kh * kw)
    out = w_mat @ cols  # (oc, n * oh * ow)
    return out.reshape(oc, n, oh, ow).transpose(1, 0, 2, 3)


class QuantConv2d:
    """BCQ-quantized convolution running its GEMM through BiQGEMM.

    The OIHW weight is flattened to ``(out_channels, in*kh*kw)``,
    quantized per output channel (the BCQ convention for conv layers)
    and compiled once.
    """

    def __init__(
        self,
        weight: np.ndarray,
        bias: np.ndarray | None = None,
        *,
        stride: int = 1,
        pad: int = 0,
        spec: QuantSpec = QuantSpec(),
    ):
        wa = np.asarray(weight, dtype=np.float64)
        if wa.ndim != 4:
            raise ValueError(f"weight must be OIHW, got shape {wa.shape}")
        check_positive_int(stride, "stride")
        if pad < 0:
            raise ValueError("pad must be >= 0")
        self.out_channels, self.in_channels, self.kh, self.kw = map(
            int, wa.shape
        )
        if bias is not None:
            bias = np.asarray(bias, dtype=np.float64)
            if bias.shape != (self.out_channels,):
                raise ValueError(
                    f"bias must have shape ({self.out_channels},), "
                    f"got {bias.shape}"
                )
        self.bias = bias
        self.stride = stride
        self.pad = pad
        self.spec = spec
        w_mat = wa.reshape(self.out_channels, -1)
        self._bcq = bcq_quantize(w_mat, spec.bits, method=spec.method)
        self._engine = BiQGemm.from_bcq(self._bcq, mu=spec.mu)

    def dequantized(self) -> np.ndarray:
        """Effective OIHW weight implied by the quantization."""
        return self._bcq.dequantize().reshape(
            self.out_channels, self.in_channels, self.kh, self.kw
        )

    @property
    def weight_nbytes(self) -> int:
        """Deployed bytes (keys + scales)."""
        return self._engine.weight_nbytes

    def __call__(self, x: np.ndarray) -> np.ndarray:
        """Convolve NCHW input; returns NCHW output."""
        xa = np.asarray(x, dtype=np.float64)
        if xa.ndim != 4:
            raise ValueError(f"x must be NCHW, got shape {xa.shape}")
        if xa.shape[1] != self.in_channels:
            raise ValueError(
                f"input has {xa.shape[1]} channels, layer expects "
                f"{self.in_channels}"
            )
        n, _, h, w = xa.shape
        oh = _out_size(h, self.kh, self.stride, self.pad)
        ow = _out_size(w, self.kw, self.stride, self.pad)
        cols = im2col(xa, self.kh, self.kw, stride=self.stride, pad=self.pad)
        out = self._engine.matmul(cols)
        out = out.reshape(self.out_channels, n, oh, ow).transpose(1, 0, 2, 3)
        if self.bias is not None:
            out = out + self.bias[None, :, None, None]
        return out
