"""2-D convolution lowered onto the GEMM engines via im2col.

The binary-coding quantization literature the paper builds on
(XNOR-Net, network sketching, LQ-Nets) targets CNNs; convolution lowers
to exactly the ``W_mat @ cols`` products BiQGEMM accelerates, with
``W_mat`` of shape ``(out_channels, in_channels * kh * kw)`` and one
column per output pixel -- so the *batch* dimension of the paper's
analysis becomes ``N * out_h * out_w``, typically large.  That makes
convolution the workload where ``backend="auto"`` earns its keep:
:class:`QuantConv2d` runs its GEMM through the same registry-dispatched
:class:`~repro.nn.linear.QuantLinear` machinery as every other layer,
and the planner routinely picks the dense path for the huge pixel
batches while the NLP layers stay on BiQGEMM.

Layout: NCHW activations, OIHW weights.
"""

from __future__ import annotations

import numpy as np

from repro._util import check_positive_int
from repro.core.workspace import current_workspace
from repro.nn.linear import QuantLinear, QuantSpec, _coerce_spec

__all__ = ["im2col", "conv2d_reference", "conv2d_gemm", "QuantConv2d"]


def _out_size(size: int, k: int, stride: int, pad: int) -> int:
    out = (size + 2 * pad - k) // stride + 1
    if out < 1:
        raise ValueError(
            f"kernel {k} with stride {stride}, pad {pad} does not fit "
            f"input extent {size}"
        )
    return out


def im2col(
    x: np.ndarray, kh: int, kw: int, *, stride: int = 1, pad: int = 0
) -> np.ndarray:
    """Unfold NCHW input into convolution columns.

    Returns ``(C * kh * kw, N * out_h * out_w)`` with columns ordered
    image-major then row-major over output pixels -- the orientation the
    GEMM engines consume directly.
    """
    check_positive_int(kh, "kh")
    check_positive_int(kw, "kw")
    check_positive_int(stride, "stride")
    if pad < 0:
        raise ValueError("pad must be >= 0")
    arr = np.asarray(x, dtype=np.float64)
    if arr.ndim != 4:
        raise ValueError(f"x must be NCHW, got shape {arr.shape}")
    n, c, h, w = arr.shape
    oh = _out_size(h, kh, stride, pad)
    ow = _out_size(w, kw, stride, pad)
    if pad:
        arr = np.pad(arr, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    # Gather patches: shape (n, c, kh, kw, oh, ow).
    strides = arr.strides
    shape = (n, c, kh, kw, oh, ow)
    view = np.lib.stride_tricks.as_strided(
        arr,
        shape=shape,
        strides=(
            strides[0],
            strides[1],
            strides[2],
            strides[3],
            strides[2] * stride,
            strides[3] * stride,
        ),
        writeable=False,
    )
    cols = view.reshape(n, c * kh * kw, oh * ow)
    return np.ascontiguousarray(
        cols.transpose(1, 0, 2).reshape(c * kh * kw, n * oh * ow)
    )


def conv2d_reference(
    x: np.ndarray, w: np.ndarray, *, stride: int = 1, pad: int = 0
) -> np.ndarray:
    """Direct-loop convolution oracle (NCHW x OIHW -> NCHW)."""
    xa = np.asarray(x, dtype=np.float64)
    wa = np.asarray(w, dtype=np.float64)
    if xa.ndim != 4 or wa.ndim != 4:
        raise ValueError("x must be NCHW and w must be OIHW")
    n, c, h, wdt = xa.shape
    oc, ic, kh, kw = wa.shape
    if ic != c:
        raise ValueError(f"channel mismatch: input {c}, weight {ic}")
    oh = _out_size(h, kh, stride, pad)
    ow = _out_size(wdt, kw, stride, pad)
    if pad:
        xa = np.pad(xa, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    out = np.zeros((n, oc, oh, ow))
    for img in range(n):
        for o in range(oc):
            for i in range(oh):
                for j in range(ow):
                    patch = xa[
                        img,
                        :,
                        i * stride : i * stride + kh,
                        j * stride : j * stride + kw,
                    ]
                    out[img, o, i, j] = (patch * wa[o]).sum()
    return out


def conv2d_gemm(
    x: np.ndarray, w: np.ndarray, *, stride: int = 1, pad: int = 0
) -> np.ndarray:
    """im2col + dense GEMM convolution (float path)."""
    xa = np.asarray(x, dtype=np.float64)
    wa = np.asarray(w, dtype=np.float64)
    if xa.ndim != 4 or wa.ndim != 4:
        raise ValueError("x must be NCHW and w must be OIHW")
    n, c, h, wdt = xa.shape
    oc, ic, kh, kw = wa.shape
    if ic != c:
        raise ValueError(f"channel mismatch: input {c}, weight {ic}")
    oh = _out_size(h, kh, stride, pad)
    ow = _out_size(wdt, kw, stride, pad)
    cols = im2col(xa, kh, kw, stride=stride, pad=pad)
    w_mat = wa.reshape(oc, ic * kh * kw)
    out = w_mat @ cols  # (oc, n * oh * ow)
    return out.reshape(oc, n, oh, ow).transpose(1, 0, 2, 3)


class QuantConv2d:
    """BCQ-quantized convolution on a registry-dispatched engine.

    The OIHW weight is flattened to ``(out_channels, in*kh*kw)``,
    quantized per output channel (the BCQ convention for conv layers)
    and served through an inner :class:`~repro.nn.linear.QuantLinear`,
    so any registered backend -- including ``"auto"`` dispatch over the
    ``N * out_h * out_w`` pixel batch -- applies to convolutions with
    no conv-specific code.

    ``spec`` accepts a :class:`~repro.nn.linear.QuantSpec` or a
    :class:`~repro.api.QuantConfig` (its base spec); the historical
    bare-kwarg form (``QuantConv2d(w, bits=2, backend="auto")``) keeps
    working through the deprecation adapter.
    """

    def __init__(
        self,
        weight: np.ndarray,
        bias: np.ndarray | None = None,
        *,
        stride: int = 1,
        pad: int = 0,
        spec: QuantSpec | None = None,
        **legacy_kwargs,
    ):
        spec = _coerce_spec(spec, legacy_kwargs)
        wa = np.asarray(weight, dtype=np.float64)
        if wa.ndim != 4:
            raise ValueError(f"weight must be OIHW, got shape {wa.shape}")
        check_positive_int(stride, "stride")
        if pad < 0:
            raise ValueError("pad must be >= 0")
        self.out_channels, self.in_channels, self.kh, self.kw = map(
            int, wa.shape
        )
        if bias is not None:
            bias = np.asarray(bias, dtype=np.float64)
            if bias.shape != (self.out_channels,):
                raise ValueError(
                    f"bias must have shape ({self.out_channels},), "
                    f"got {bias.shape}"
                )
        self.bias = bias
        self.stride = stride
        self.pad = pad
        self.spec = spec
        # Bias is applied here after the NCHW reshape, not by the inner
        # linear layer.
        self._linear = QuantLinear(
            wa.reshape(self.out_channels, -1), spec=spec
        )

    def dequantized(self) -> np.ndarray:
        """Effective OIHW weight of the engine actually serving."""
        return self._linear.dequantized().reshape(
            self.out_channels, self.in_channels, self.kh, self.kw
        )

    @property
    def weight_nbytes(self) -> int:
        """Deployed bytes for the engine serving the batch hint."""
        return self._linear.weight_nbytes

    def planned_backend(self, batch: int = 1) -> str:
        """The backend the planner resolves at *batch* pixel columns."""
        return self._linear.planned_backend(batch)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        """Convolve NCHW input; returns NCHW output.

        With an active :class:`~repro.core.workspace.Workspace` and an
        engine implementing ``matmul_into``, the GEMM output comes from
        the arena (the pixel-batch product is the conv's dominant
        intermediate); im2col and the NCHW reshape keep their copies.
        """
        xa = np.asarray(x, dtype=np.float64)
        if xa.ndim != 4:
            raise ValueError(f"x must be NCHW, got shape {xa.shape}")
        if xa.shape[1] != self.in_channels:
            raise ValueError(
                f"input has {xa.shape[1]} channels, layer expects "
                f"{self.in_channels}"
            )
        n, _, h, w = xa.shape
        oh = _out_size(h, self.kh, self.stride, self.pad)
        ow = _out_size(w, self.kw, self.stride, self.pad)
        cols = im2col(xa, self.kh, self.kw, stride=self.stride, pad=self.pad)
        pixels = cols.shape[1]
        if pixels:
            engine = self._linear.engine_for(pixels)
            workspace = current_workspace()
            matmul_into = (
                getattr(engine, "matmul_into", None)
                if workspace is not None
                else None
            )
            if matmul_into is not None:
                out = matmul_into(
                    cols,
                    out=workspace.acquire(
                        "conv.out", (self.out_channels, pixels), cols.dtype
                    ),
                    workspace=workspace,
                )
            else:
                out = engine.matmul(cols)
        else:
            out = np.zeros((self.out_channels, 0))
        out = out.reshape(self.out_channels, n, oh, ow).transpose(1, 0, 2, 3)
        if self.bias is not None:
            out = out + self.bias[None, :, None, None]
        return out
