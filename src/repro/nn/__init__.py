"""Inference-only DNN substrate built on the matmul engines.

The paper motivates BiQGEMM with NLP workloads (Section II-C):
Transformer encoder/decoder stacks, BERT-style encoders and LSTM-based
ASR models, all dominated by ``(m x n) @ (n x b)`` products with ``m, n``
in the thousands.  This subpackage provides numpy implementations of
those layers with a pluggable linear backend: every projection flows
through :func:`~repro.nn.linear.make_linear`, which resolves its engine
via the :mod:`repro.engine` registry -- a pinned backend name, or
``QuantSpec(backend="auto")`` for cost-model dispatch that picks
BiQGEMM in the small-batch regime and dense BLAS at large batch
(the paper's Section V crossover) -- so whole models can be compared
end to end across engines.  Every builder also accepts a whole-model
:class:`~repro.api.QuantConfig` (per-layer glob overrides applied by
dotted path), and :func:`repro.api.quantize` lifts any float model
built here into the quantize -> compile -> serve pipeline.

- :mod:`repro.nn.functional` -- softmax, layernorm, activations;
- :mod:`repro.nn.linear` -- :class:`~repro.nn.linear.Linear` /
  :class:`~repro.nn.linear.QuantLinear` and the
  :class:`~repro.nn.linear.QuantSpec` backend selector;
- :mod:`repro.nn.embedding` -- token embeddings + sinusoidal positions;
- :mod:`repro.nn.attention` -- multi-head attention;
- :mod:`repro.nn.transformer` -- encoder/decoder layers and stacks;
- :mod:`repro.nn.lstm` -- LSTM cells/layers (LAS-style ASR encoder);
- :mod:`repro.nn.model_zoo` -- the paper's Section II-C model shapes.
"""

from repro.nn.functional import softmax, layer_norm, relu, gelu, sigmoid, tanh
from repro.nn.linear import Linear, QuantLinear, QuantSpec, make_linear
from repro.nn.embedding import Embedding, positional_encoding
from repro.nn.attention import MultiHeadAttention
from repro.nn.transformer import (
    TransformerConfig,
    TransformerEncoderLayer,
    TransformerDecoderLayer,
    TransformerEncoder,
)
from repro.nn.lstm import LSTMCell, LSTMLayer, BiLSTMLayer
from repro.nn.conv import QuantConv2d, conv2d_gemm, conv2d_reference, im2col
from repro.nn.seq2seq import Seq2SeqTransformer
from repro.nn.model_zoo import (
    MODEL_SHAPES,
    model_backend_plan,
    model_gemm_shapes,
    build_encoder,
)

__all__ = [
    "softmax",
    "layer_norm",
    "relu",
    "gelu",
    "sigmoid",
    "tanh",
    "Linear",
    "QuantLinear",
    "QuantSpec",
    "make_linear",
    "Embedding",
    "positional_encoding",
    "MultiHeadAttention",
    "TransformerConfig",
    "TransformerEncoderLayer",
    "TransformerDecoderLayer",
    "TransformerEncoder",
    "LSTMCell",
    "LSTMLayer",
    "BiLSTMLayer",
    "QuantConv2d",
    "conv2d_gemm",
    "conv2d_reference",
    "im2col",
    "Seq2SeqTransformer",
    "MODEL_SHAPES",
    "model_backend_plan",
    "model_gemm_shapes",
    "build_encoder",
]
