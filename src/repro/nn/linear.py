"""Linear layers with pluggable matmul backends.

:class:`Linear` is the dense float reference.  :class:`QuantLinear`
quantizes its weight with BCQ at construction and dispatches the forward
product to one of the engines this repo implements:

``backend="biqgemm"``
    :class:`repro.core.kernel.BiQGemm` -- the paper's kernel.
``backend="xnor"``
    :class:`repro.gemm.xnor.XnorGemm` -- activations quantized on the
    fly (paper Eq. 3).
``backend="unpack"``
    Bit-packed weights decoded per call then BLAS
    (:func:`repro.gemm.packed.gemm_with_unpack` semantics).
``backend="container"``
    The paper's sGEMM: binary components stored one per 32-bit
    container, plain BLAS (no quantization benefit).
``backend="dense"``
    Dequantize once and use BLAS -- numerically identical to
    ``biqgemm`` and used as its oracle in tests.

Layer convention: activations are row vectors, ``y = x @ W^T + bias``
with ``x`` shaped ``(..., n)`` and ``W`` shaped ``(m, n)``.  Internally
the engines use the paper's column orientation; the layer handles the
transposes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

from repro._util import as_2d_float
from repro.core.kernel import BiQGemm
from repro.gemm.packed import gemm_with_unpack
from repro.gemm.sgemm import sgemm_container
from repro.gemm.xnor import XnorGemm
from repro.quant.bcq import BCQTensor, bcq_quantize
from repro.quant.packing import pack_bits

__all__ = ["Linear", "QuantLinear", "QuantSpec", "make_linear"]

Backend = Literal["biqgemm", "xnor", "unpack", "container", "dense"]


@dataclass(frozen=True)
class QuantSpec:
    """How a :class:`QuantLinear` should quantize and compute.

    Attributes
    ----------
    bits:
        BCQ weight bits (paper: 1-3 for weights).
    mu:
        LUT-unit for the BiQGEMM backend.
    method:
        ``"greedy"`` or ``"alternating"`` BCQ solver.
    backend:
        Engine selection; see module docstring.
    a_bits:
        Activation bits for the ``xnor`` backend (ignored elsewhere).
    """

    bits: int = 3
    mu: int = 8
    method: str = "greedy"
    backend: Backend = "biqgemm"
    a_bits: int = 1


class Linear:
    """Dense float linear layer: ``y = x @ W^T + bias``."""

    def __init__(self, weight: np.ndarray, bias: np.ndarray | None = None):
        self.weight = as_2d_float(weight, "weight")
        if bias is not None:
            bias = np.asarray(bias, dtype=np.float64)
            if bias.shape != (self.weight.shape[0],):
                raise ValueError(
                    f"bias must have shape ({self.weight.shape[0]},), "
                    f"got {bias.shape}"
                )
        self.bias = bias

    @property
    def shape(self) -> tuple[int, int]:
        """Weight shape ``(m, n)``: maps ``n`` features to ``m``."""
        return tuple(self.weight.shape)  # type: ignore[return-value]

    def __call__(self, x: np.ndarray) -> np.ndarray:
        """Apply to ``(..., n)`` activations; returns ``(..., m)``."""
        arr = np.asarray(x, dtype=np.float64)
        out = arr @ self.weight.T
        if self.bias is not None:
            out = out + self.bias
        return out


class QuantLinear:
    """BCQ-quantized linear layer with a selectable compute engine.

    The float weight is quantized once at construction; the original
    dense weight is *not* retained (matching deployment, where only the
    compiled keys ship).  ``dequantized`` reconstructs the effective
    weight for analysis.
    """

    def __init__(
        self,
        weight: np.ndarray,
        bias: np.ndarray | None = None,
        *,
        spec: QuantSpec = QuantSpec(),
    ):
        w = as_2d_float(weight, "weight")
        m = w.shape[0]
        if bias is not None:
            bias = np.asarray(bias, dtype=np.float64)
            if bias.shape != (m,):
                raise ValueError(f"bias must have shape ({m},), got {bias.shape}")
        self.bias = bias
        self.spec = spec
        self._bcq: BCQTensor = bcq_quantize(w, spec.bits, method=spec.method)
        self._shape = (int(w.shape[0]), int(w.shape[1]))
        backend = spec.backend
        if backend == "biqgemm":
            self._engine = BiQGemm.from_bcq(self._bcq, mu=spec.mu)
        elif backend == "xnor":
            self._engine = XnorGemm(self._bcq.binary, self._bcq.alphas)
        elif backend == "unpack":
            self._packed = [
                pack_bits(self._bcq.binary[i]) for i in range(spec.bits)
            ]
        elif backend in ("container", "dense"):
            pass
        else:
            raise ValueError(f"unknown backend {backend!r}")
        if backend == "dense":
            self._dense = self._bcq.dequantize()

    @property
    def shape(self) -> tuple[int, int]:
        """Weight shape ``(m, n)``."""
        return self._shape

    @property
    def bcq(self) -> BCQTensor:
        """The quantized weight representation."""
        return self._bcq

    def dequantized(self) -> np.ndarray:
        """Effective dense weight implied by the quantization."""
        return self._bcq.dequantize()

    @property
    def weight_nbytes(self) -> int:
        """Deployed weight bytes for the chosen backend."""
        backend = self.spec.backend
        if backend == "biqgemm":
            return self._engine.weight_nbytes
        if backend == "xnor":
            return self._engine.weight_nbytes
        if backend == "unpack":
            return sum(p.nbytes for p in self._packed) + self._bcq.alphas.nbytes
        # container / dense: one float32 word per weight per plane.
        bits, m, n = self._bcq.binary.shape
        per_plane = m * n * 4
        planes = bits if backend == "container" else 1
        return planes * per_plane + self._bcq.alphas.nbytes

    def __call__(self, x: np.ndarray) -> np.ndarray:
        """Apply to ``(..., n)`` activations; returns ``(..., m)``."""
        arr = np.asarray(x, dtype=np.float64)
        lead = arr.shape[:-1]
        n = self._shape[1]
        if arr.shape[-1] != n:
            raise ValueError(
                f"input features {arr.shape[-1]} != layer width {n}"
            )
        cols = arr.reshape(-1, n).T  # engines use (n, tokens)
        backend = self.spec.backend
        if backend == "biqgemm":
            out_cols = self._engine.matmul(cols)
        elif backend == "xnor":
            out_cols = self._engine.matmul(cols, a_bits=self.spec.a_bits)
        elif backend == "unpack":
            out_cols = np.zeros((self._shape[0], cols.shape[1]))
            for i, packed in enumerate(self._packed):
                out_cols += self._bcq.alphas[i][:, None] * gemm_with_unpack(
                    packed, cols
                )
        elif backend == "container":
            out_cols = sgemm_container(self._bcq.binary, cols, self._bcq.alphas)
        else:  # dense
            out_cols = self._dense @ cols
        out = out_cols.T.reshape(lead + (self._shape[0],))
        if self.bias is not None:
            out = out + self.bias
        return out


def make_linear(
    weight: np.ndarray,
    bias: np.ndarray | None = None,
    *,
    spec: QuantSpec | None = None,
):
    """Factory: dense :class:`Linear` when *spec* is None, else
    :class:`QuantLinear`.

    Model builders take this as their injection point so a whole network
    can be flipped between float and quantized execution with one
    argument.
    """
    if spec is None:
        return Linear(weight, bias)
    return QuantLinear(weight, bias, spec=spec)
