"""Linear layers with registry-dispatched matmul backends.

:class:`Linear` is the dense float reference.  :class:`QuantLinear`
quantizes its weight with BCQ at construction and forwards its product
to whatever engine the :mod:`repro.engine` registry resolves for its
:class:`~repro.engine.base.QuantSpec` -- by name (``"biqgemm"``,
``"xnor"``, ``"unpack"``, ``"container"``, ``"dense"``, ``"int8"``, or
anything registered later), or via the cost-model planner with
``backend="auto"``.  With ``auto`` and no ``batch_hint``, the layer
re-plans per call from the observed batch, so a single layer serves
the GEMV decode regime on BiQGEMM and large-batch scoring on dense
BLAS, exactly the situational-winner behaviour of the paper's
Section V; compiled engines are cached per backend, and plans come
from the process-wide plan cache.

Layer convention: activations are row vectors, ``y = x @ W^T + bias``
with ``x`` shaped ``(..., n)`` and ``W`` shaped ``(m, n)``.  Internally
the engines use the paper's column orientation; the layer handles the
transposes.  Floating input dtypes are preserved end to end (bias
addition follows numpy promotion).
"""

from __future__ import annotations

import numpy as np

from repro._util import as_2d_float, check_positive_int
from repro.engine import (
    AUTO_BACKEND,
    Backend,
    EngineBuildRequest,
    MatmulEngine,
    QuantSpec,
    build_engine,
    engine_entry,
    resolve_backend,
    weight_required,
)
from repro.hw.machine import MACHINES
from repro.quant.bcq import BCQTensor

__all__ = ["Linear", "QuantLinear", "QuantSpec", "Backend", "make_linear"]


class Linear:
    """Dense float linear layer: ``y = x @ W^T + bias``."""

    def __init__(self, weight: np.ndarray, bias: np.ndarray | None = None):
        self.weight = as_2d_float(weight, "weight")
        if bias is not None:
            bias = np.asarray(bias, dtype=np.float64)
            if bias.shape != (self.weight.shape[0],):
                raise ValueError(
                    f"bias must have shape ({self.weight.shape[0]},), "
                    f"got {bias.shape}"
                )
        self.bias = bias

    @property
    def shape(self) -> tuple[int, int]:
        """Weight shape ``(m, n)``: maps ``n`` features to ``m``."""
        return tuple(self.weight.shape)  # type: ignore[return-value]

    def __call__(self, x: np.ndarray) -> np.ndarray:
        """Apply to ``(..., n)`` activations; returns ``(..., m)``."""
        arr = np.asarray(x, dtype=np.float64)
        out = arr @ self.weight.T
        if self.bias is not None:
            out = out + self.bias
        return out


def _validate_spec(spec: QuantSpec) -> None:
    """Fail fast on spec fields the registry/planner would reject later."""
    if spec.planner not in ("model", "autotune"):
        raise ValueError(
            f"planner must be 'model' or 'autotune', got {spec.planner!r}"
        )
    if spec.batch_hint is not None:
        check_positive_int(spec.batch_hint, "batch_hint")
    if spec.backend != AUTO_BACKEND:
        engine_entry(spec.backend)  # raises on unknown backend names
        return
    if spec.machine not in MACHINES:
        raise ValueError(
            f"unknown machine {spec.machine!r}; expected one of "
            f"{sorted(MACHINES)}"
        )


class QuantLinear:
    """BCQ-quantized linear layer with a registry-dispatched engine.

    The float weight is quantized once at construction (the expensive
    offline step) and then dropped unless a reachable backend declares
    it needs the original (matching deployment, where only compiled
    state ships).  Engines compile lazily on first use and are cached
    per backend name, so an ``"auto"`` layer that serves two batch
    regimes keeps both compiled engines without re-quantizing.
    ``dequantized`` reconstructs the effective weight for analysis.
    """

    def __init__(
        self,
        weight: np.ndarray,
        bias: np.ndarray | None = None,
        *,
        spec: QuantSpec = QuantSpec(),
    ):
        w = as_2d_float(weight, "weight")
        m = w.shape[0]
        if bias is not None:
            bias = np.asarray(bias, dtype=np.float64)
            if bias.shape != (m,):
                raise ValueError(f"bias must have shape ({m},), got {bias.shape}")
        self.bias = bias
        _validate_spec(spec)
        self.spec = spec
        self._request = EngineBuildRequest(spec=spec, weight=w)
        if not weight_required(spec):
            # Solves BCQ (the state every reachable backend builds
            # from) and drops the float weight.  Backends that fit
            # their own grid to the float weight (int8) skip the BCQ
            # solve entirely unless it is asked for.
            self._request.release_weight()
        self._shape = (int(w.shape[0]), int(w.shape[1]))
        self._engines: dict[str, MatmulEngine] = {}

    @property
    def shape(self) -> tuple[int, int]:
        """Weight shape ``(m, n)``."""
        return self._shape

    @property
    def bcq(self) -> BCQTensor:
        """The BCQ representation (solved on first access)."""
        return self._request.get_bcq()

    def dequantized(self) -> np.ndarray:
        """Effective dense weight of the engine actually serving.

        Backends that build from BCQ state all share the layer's BCQ
        reconstruction (no engine compile needed); backends that fit
        their own grid to the float weight (int8) report the engine's
        effective weight.
        """
        if not weight_required(self.spec):
            return self.bcq.dequantize()
        engine = self.engine_for(self.spec.batch_hint or 1)
        engine_dequantize = getattr(engine, "dequantized", None)
        if engine_dequantize is not None:
            return engine_dequantize()
        return self.bcq.dequantize()

    def planned_backend(self, batch: int = 1) -> str:
        """The concrete backend this layer would run at *batch* columns."""
        return resolve_backend(self.spec, *self._shape, batch)

    @property
    def compiled_backends(self) -> tuple[str, ...]:
        """Backends compiled (and cached) by this layer so far."""
        return tuple(sorted(self._engines))

    def engine_for(self, batch: int = 1) -> MatmulEngine:
        """The compiled engine serving *batch* columns (built on demand)."""
        name = self.planned_backend(batch)
        engine = self._engines.get(name)
        if engine is None:
            engine = build_engine(name, self._request)
            self._engines[name] = engine
        return engine

    @property
    def weight_nbytes(self) -> int:
        """Deployed weight bytes for the backend serving the batch hint."""
        return int(self.engine_for(self.spec.batch_hint or 1).weight_nbytes)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        """Apply to ``(..., n)`` activations; returns ``(..., m)``."""
        arr = np.asarray(x)
        if not np.issubdtype(arr.dtype, np.floating):
            arr = arr.astype(np.float64)
        lead = arr.shape[:-1]
        n = self._shape[1]
        if arr.ndim == 0 or arr.shape[-1] != n:
            raise ValueError(
                f"input features {arr.shape[-1] if arr.ndim else 0} != "
                f"layer width {n}"
            )
        cols = arr.reshape(-1, n).T  # engines use (n, tokens)
        if cols.shape[1]:
            out_cols = self.engine_for(cols.shape[1]).matmul(cols)
        else:
            # Zero tokens: nothing to plan or multiply.
            out_cols = np.zeros((self._shape[0], 0), dtype=arr.dtype)
        out = out_cols.T.reshape(lead + (self._shape[0],))
        if self.bias is not None:
            out = out + self.bias
        return out


def make_linear(
    weight: np.ndarray,
    bias: np.ndarray | None = None,
    *,
    spec: QuantSpec | None = None,
):
    """Factory: dense :class:`Linear` when *spec* is None, else
    :class:`QuantLinear`.

    Model builders take this as their injection point so a whole network
    can be flipped between float execution, a pinned engine, or
    cost-model auto-dispatch with one argument.
    """
    if spec is None:
        return Linear(weight, bias)
    return QuantLinear(weight, bias, spec=spec)
