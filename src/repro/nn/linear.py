"""Linear layers with registry-dispatched matmul backends.

:class:`Linear` is the dense float reference.  :class:`QuantLinear`
quantizes its weight with BCQ at construction and forwards its product
to whatever engine the :mod:`repro.engine` registry resolves for its
:class:`~repro.engine.base.QuantSpec` -- by name (``"biqgemm"``,
``"xnor"``, ``"unpack"``, ``"container"``, ``"dense"``, ``"int8"``, or
anything registered later), or via the cost-model planner with
``backend="auto"``.  With ``auto`` and no ``batch_hint``, the layer
re-plans per call from the observed batch, so a single layer serves
the GEMV decode regime on BiQGEMM and large-batch scoring on dense
BLAS, exactly the situational-winner behaviour of the paper's
Section V; compiled engines are cached per backend, and plans come
from the process-wide plan cache.

Three spellings select the quantization behaviour, newest first:

- a :class:`~repro.api.QuantConfig` (model-level defaults; per-layer
  glob overrides apply when the layer is built through
  :func:`repro.api.quantize`);
- a :class:`~repro.engine.base.QuantSpec` via ``spec=``;
- bare keyword arguments (``bits=3, backend="auto"``) -- the historical
  per-layer API, kept working through an adapter that emits a
  deprecation note.

Layer convention: activations are row vectors, ``y = x @ W^T + bias``
with ``x`` shaped ``(..., n)`` and ``W`` shaped ``(m, n)``.  Internally
the engines use the paper's column orientation; the layer handles the
transposes.  Floating input dtypes are preserved end to end: engine
outputs follow the activation dtype and the bias is cast to the output
dtype before addition (it is stored in its own floating dtype, never
silently coerced to float64).
"""

from __future__ import annotations

import threading
import time
import warnings
from dataclasses import fields, replace

import numpy as np

from repro._util import as_2d_float
from repro.core.workspace import current_workspace
from repro.obs import runtime as _obs
from repro.engine import (
    AUTO_BACKEND,
    Backend,
    EngineBuildRequest,
    MatmulEngine,
    QuantSpec,
    build_engine,
    engine_entry,
    resolve_backend,
    validate_spec,
    weight_required,
)
from repro.quant.bcq import BCQTensor

__all__ = [
    "Linear",
    "QuantLinear",
    "QuantSpec",
    "Backend",
    "make_linear",
    "split_builder_spec",
]

_SPEC_FIELD_NAMES = tuple(f.name for f in fields(QuantSpec))

# Sentinel for pin_backend(fuse=...): "leave the spec's fuse as is".
_KEEP = object()


def _check_bias(bias, m: int):
    """Validate a bias vector, preserving its floating dtype.

    Integer/bool biases are promoted to float64; float32/float16 biases
    stay as given so low-precision models keep their dtype end to end.
    """
    if bias is None:
        return None
    arr = np.asarray(bias)
    if arr.shape != (m,):
        raise ValueError(f"bias must have shape ({m},), got {arr.shape}")
    if not np.issubdtype(arr.dtype, np.floating):
        arr = arr.astype(np.float64)
    return arr


def _add_bias(out: np.ndarray, bias: np.ndarray | None) -> np.ndarray:
    """Bias addition in the output's dtype (no silent upcast)."""
    if bias is None:
        return out
    return out + bias.astype(out.dtype, copy=False)


def _coerce_spec(spec, kwargs: dict) -> QuantSpec:
    """Resolve the three accepted spellings to one ``QuantSpec``.

    ``spec`` may be a :class:`QuantSpec`, a
    :class:`~repro.api.QuantConfig` (its base spec is used -- per-layer
    overrides need the named-model path, :func:`repro.api.quantize`),
    or ``None``.  Bare keyword arguments are the historical per-layer
    API; they still work but emit a deprecation note pointing at
    ``QuantConfig``.
    """
    if kwargs:
        if spec is not None:
            raise TypeError(
                "pass either spec=/config or bare quantization kwargs, "
                "not both"
            )
        unknown = sorted(set(kwargs) - set(_SPEC_FIELD_NAMES))
        if unknown:
            raise TypeError(
                f"unknown quantization keyword(s) {unknown}; expected a "
                f"subset of {sorted(_SPEC_FIELD_NAMES)}"
            )
        warnings.warn(
            "per-layer quantization kwargs (bits=..., backend=...) are "
            "deprecated; pass spec=QuantSpec(...) or quantize the whole "
            "model with repro.api.QuantConfig",
            DeprecationWarning,
            stacklevel=3,
        )
        return QuantSpec(**kwargs)
    if spec is None:
        return QuantSpec()
    if isinstance(spec, QuantSpec):
        return spec
    from repro.api.config import QuantConfig

    if isinstance(spec, QuantConfig):
        return spec.base_spec()
    raise TypeError(
        f"spec must be a QuantSpec or QuantConfig, got {type(spec).__name__}"
    )


def split_builder_spec(spec):
    """``(QuantSpec | None, QuantConfig | None)`` from a builder's
    ``spec`` argument.

    Model builders (transformer/LSTM/seq2seq stacks) accept either a
    per-layer :class:`QuantSpec` (threaded to every projection) or a
    whole-model :class:`~repro.api.QuantConfig`; in the config case the
    builder constructs float layers first and then quantizes itself in
    place through :func:`repro.api.apply_config`, so glob overrides see
    the real layer paths.
    """
    if spec is None or isinstance(spec, QuantSpec):
        return spec, None
    from repro.api.config import QuantConfig

    if isinstance(spec, QuantConfig):
        return None, spec
    raise TypeError(
        f"spec must be a QuantSpec or QuantConfig, got {type(spec).__name__}"
    )


class Linear:
    """Dense float linear layer: ``y = x @ W^T + bias``.

    Floating activation dtypes are preserved: the weight is cast (and
    cached) per activation dtype, mirroring the quantized engines.
    """

    def __init__(self, weight: np.ndarray, bias: np.ndarray | None = None):
        self.weight = as_2d_float(weight, "weight")
        self.bias = _check_bias(bias, self.weight.shape[0])
        self._weight_cache: dict[np.dtype, np.ndarray] = {}

    @property
    def shape(self) -> tuple[int, int]:
        """Weight shape ``(m, n)``: maps ``n`` features to ``m``."""
        return tuple(self.weight.shape)  # type: ignore[return-value]

    def __call__(self, x: np.ndarray) -> np.ndarray:
        """Apply to ``(..., n)`` activations; returns ``(..., m)``."""
        arr = np.asarray(x)
        if not np.issubdtype(arr.dtype, np.floating):
            arr = arr.astype(np.float64)
        w = self._weight_cache.get(arr.dtype)
        if w is None:
            w = self.weight.astype(arr.dtype, copy=False)
            self._weight_cache[arr.dtype] = w
        out = arr @ w.T
        return _add_bias(out, self.bias)


class QuantLinear:
    """BCQ-quantized linear layer with a registry-dispatched engine.

    The float weight is quantized once at construction (the expensive
    offline step) and then dropped unless a reachable backend declares
    it needs the original (matching deployment, where only compiled
    state ships).  Engines compile lazily on first use and are cached
    per backend name, so an ``"auto"`` layer that serves two batch
    regimes keeps both compiled engines without re-quantizing.
    ``dequantized`` reconstructs the effective weight for analysis.

    Besides ``spec=QuantSpec(...)``, the constructor accepts a
    :class:`~repro.api.QuantConfig` (its base spec) and, for backward
    compatibility, bare kwargs (``QuantLinear(w, bits=3,
    backend="auto")``) with a deprecation note.
    """

    def __init__(
        self,
        weight: np.ndarray,
        bias: np.ndarray | None = None,
        *,
        spec: QuantSpec | None = None,
        **legacy_kwargs,
    ):
        spec = _coerce_spec(spec, legacy_kwargs)
        w = as_2d_float(weight, "weight")
        self.bias = _check_bias(bias, w.shape[0])
        validate_spec(spec)
        self.spec = spec
        self._request = EngineBuildRequest(spec=spec, weight=w, bias=self.bias)
        if not weight_required(spec):
            # Solves BCQ (the state every reachable backend builds
            # from) and drops the float weight.  Backends that fit
            # their own grid to the float weight (int8) skip the BCQ
            # solve entirely unless it is asked for.
            self._request.release_weight()
        self._shape = (int(w.shape[0]), int(w.shape[1]))
        self._engines: dict[str, MatmulEngine] = {}
        self._build_lock = threading.Lock()
        self._bias_cache: dict[np.dtype, np.ndarray] = {}

    def _bias_for(self, dtype: np.dtype) -> np.ndarray:
        """The bias cast to *dtype*, cached (a per-call allocation on
        the workspace path otherwise)."""
        cached = self._bias_cache.get(dtype)
        if cached is None:
            cached = self.bias.astype(dtype, copy=False)
            self._bias_cache[dtype] = cached
        return cached

    @classmethod
    def from_engine(
        cls,
        engine: MatmulEngine,
        *,
        spec: QuantSpec,
        bias: np.ndarray | None = None,
    ) -> "QuantLinear":
        """Rehydrate a layer around an already-compiled engine.

        The deserialization path of the v3 whole-model artifact: no
        float weight exists and no quantization runs.  ``spec.backend``
        must be the concrete backend *engine* implements.  When the
        engine exposes its BCQ state the layer can still compile other
        BCQ-derived backends; otherwise it serves exactly this one.
        """
        if AUTO_BACKEND == spec.backend:
            raise ValueError(
                "from_engine needs a concrete spec.backend naming the "
                "compiled engine"
            )
        engine_entry(spec.backend)
        obj = cls.__new__(cls)
        m, n = engine.shape
        obj.bias = _check_bias(bias, int(m))
        obj.spec = spec
        bcq = getattr(engine, "bcq", None)
        obj._request = (
            EngineBuildRequest(spec=spec, bcq=bcq, bias=obj.bias)
            if bcq is not None
            else None
        )
        obj._shape = (int(m), int(n))
        obj._engines = {spec.backend: engine}
        obj._build_lock = threading.Lock()
        obj._bias_cache = {}
        return obj

    def with_spec(self, spec: QuantSpec) -> "QuantLinear":
        """A layer serving the same quantized weight under a new spec.

        The model-level re-spec path (:func:`repro.api.quantize` over an
        already-quantized model): when *spec* agrees with the solved
        quantization (``bits``/``method``) the expensive BCQ state is
        shared and nothing re-runs; when the original float weight is
        still held the layer is rebuilt from it; otherwise changing the
        quantization itself is refused -- re-quantizing a reconstruction
        would silently compound error.
        """
        validate_spec(spec)
        if self._request is None:
            raise ValueError(
                "cannot re-spec a layer restored from a compiled artifact"
            )
        if self._request.weight is not None:
            return QuantLinear(self._request.weight, self.bias, spec=spec)
        if (spec.bits, spec.method) != (self.spec.bits, self.spec.method):
            raise ValueError(
                f"layer is already quantized at bits={self.spec.bits} "
                f"method={self.spec.method!r}; a config asking for "
                f"bits={spec.bits} method={spec.method!r} would "
                "re-quantize a reconstruction.  Build the model float "
                "(spec=None) and quantize it through repro.api instead."
            )
        obj = QuantLinear.__new__(QuantLinear)
        obj.bias = self.bias
        obj.spec = spec
        obj._request = EngineBuildRequest(
            spec=spec, bcq=self._request.get_bcq(), bias=self.bias
        )
        obj._shape = self._shape
        obj._engines = {}
        obj._build_lock = threading.Lock()
        obj._bias_cache = {}
        obj._batch_invariant = self._batch_invariant
        return obj

    # Class-level default so every construction path (__init__,
    # from_engine, with_spec, clone_shared via __new__) starts
    # non-invariant without each having to set it.
    _batch_invariant = False

    @property
    def batch_invariant(self) -> bool:
        """Whether this layer guarantees column-wise bit-identity.

        In batch-invariant mode every activation column's result is
        bit-identical whether it arrives alone (a decode step's GEMV)
        or batched with others (the prefill GEMM) -- the contract the
        KV-cache bit-identity tests pin.  Every call plans at batch 1
        (``engine_for(1)``), so an ``auto`` spec cannot route a prefill
        onto a different engine than the decode-step GEMV; on that
        engine, invariant-by-construction backends
        (``engine.batch_invariant``) run batched natively while the
        rest fall back to one engine call per column for multi-column
        inputs, trading batched throughput for invariance.  Single
        columns always take the engine's native path.
        """
        return self._batch_invariant

    def set_batch_invariant(self, flag: bool = True) -> None:
        """Enable (or disable) batch-invariant mode (see
        :attr:`batch_invariant`).  Flipped by the decode machinery
        (:func:`repro.gen.model.mark_batch_invariant`); plain batched
        serving keeps the default off."""
        self._batch_invariant = bool(flag)

    def clone_shared(self) -> "QuantLinear":
        """A layer sharing this one's compiled engines and quantized
        state, with independent mutable bookkeeping.

        The serving replica path (:meth:`repro.api.CompiledModel.clone`):
        compiled engines are immutable after build and their ``matmul``
        holds no per-call state, so replicas can share them -- but each
        replica gets its own engine dict and build lock, so a worker
        thread lazily compiling an additional backend never mutates a
        dict another thread is reading.
        """
        obj = QuantLinear.__new__(QuantLinear)
        obj.bias = self.bias
        obj.spec = self.spec
        obj._request = self._request
        obj._shape = self._shape
        obj._engines = dict(self._engines)
        obj._build_lock = threading.Lock()
        obj._bias_cache = {}
        obj._batch_invariant = self._batch_invariant
        return obj

    @property
    def shape(self) -> tuple[int, int]:
        """Weight shape ``(m, n)``."""
        return self._shape

    @property
    def bcq(self) -> BCQTensor:
        """The BCQ representation (solved on first access)."""
        if self._request is None:
            raise ValueError(
                "layer was restored from a compiled artifact without BCQ "
                "state"
            )
        return self._request.get_bcq()

    def dequantized(self) -> np.ndarray:
        """Effective dense weight of the engine actually serving.

        Backends that build from BCQ state all share the layer's BCQ
        reconstruction (no engine compile needed); backends that fit
        their own grid to the float weight (int8) report the engine's
        effective weight.
        """
        if self._request is not None and not weight_required(self.spec):
            return self.bcq.dequantize()
        engine = self.engine_for(self.spec.batch_hint or 1)
        engine_dequantize = getattr(engine, "dequantized", None)
        if engine_dequantize is not None:
            return engine_dequantize()
        engine_bcq = getattr(engine, "bcq", None)
        if engine_bcq is not None:
            return engine_bcq.dequantize()
        if self._request is not None:
            return self.bcq.dequantize()
        raise ValueError(
            f"backend {self.spec.backend!r} restored from a compiled "
            "artifact carries no dequantizable state"
        )

    def planned_backend(self, batch: int = 1) -> str:
        """The concrete backend this layer would run at *batch* columns."""
        return resolve_backend(self.spec, *self._shape, batch)

    def pin_backend(
        self,
        backend: str,
        *,
        batch_hint: int | None = None,
        fuse: str | None = _KEEP,
    ) -> None:
        """Freeze this layer onto *backend* (the compile step's pin).

        Replaces the spec's backend (and ``batch_hint``) so every later
        call resolves to the pinned engine without consulting the
        planner -- plans survive :func:`~repro.engine.clear_plan_cache`.
        Already-compiled engines stay cached.

        *fuse* sets the epilogue activation fused into a ``"compiled"``
        engine (the fusion planning pass of
        :meth:`repro.api.QuantModel.compile`).  Omitting it keeps the
        spec's current value; passing a different value evicts any
        cached ``"compiled"`` engine, which baked the old epilogue in
        at build time.
        """
        engine_entry(backend)
        if fuse is _KEEP:
            fuse = self.spec.fuse
        new = replace(
            self.spec, backend=backend, batch_hint=batch_hint, fuse=fuse
        )
        validate_spec(new)
        if fuse != self.spec.fuse:
            with self._build_lock:
                self._engines.pop("compiled", None)
        self.spec = new
        if self._request is not None:
            self._request.spec = new

    @property
    def fused_activation(self) -> str | None:
        """Activation folded into the engine's epilogue, if any.

        Non-None only when the layer is pinned on an engine that
        actually fuses (the engine, not the backend name, is asked):
        model forward passes skip their own activation step for such
        layers.
        """
        if self.spec.fuse is None:
            return None
        engine = self.engine_for(self.spec.batch_hint or 1)
        return getattr(engine, "activation", None)

    @property
    def compiled_backends(self) -> tuple[str, ...]:
        """Backends compiled (and cached) by this layer so far."""
        return tuple(sorted(self._engines))

    def engine_for(self, batch: int = 1) -> MatmulEngine:
        """The compiled engine serving *batch* columns (built on demand).

        Thread-safe: concurrent callers racing on a cold backend build
        it exactly once (double-checked under the layer's build lock),
        so serving workers can share a layer without duplicating the
        compile or tearing the engine dict.
        """
        name = self.planned_backend(batch)
        engine = self._engines.get(name)
        if engine is None:
            with self._build_lock:
                engine = self._engines.get(name)
                if engine is None:
                    if self._request is None:
                        raise ValueError(
                            f"layer restored from a compiled artifact "
                            f"serves only {self.compiled_backends}; "
                            f"cannot build {name!r}"
                        )
                    engine = build_engine(name, self._request)
                    self._engines[name] = engine
        return engine

    @property
    def weight_nbytes(self) -> int:
        """Deployed weight bytes for the backend serving the batch hint."""
        return int(self.engine_for(self.spec.batch_hint or 1).weight_nbytes)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        """Apply to ``(..., n)`` activations; returns ``(..., m)``.

        When a :class:`~repro.core.workspace.Workspace` is active
        (:func:`repro.core.workspace.use_workspace` -- the
        :class:`~repro.api.CompiledModel` serving path) and the engine
        implements ``matmul_into``, the activation buffer comes from
        the arena and the product is computed in place: the returned
        array is arena-owned and valid until the workspace resets.
        Engines without ``matmul_into`` (and all calls outside a
        workspace) take the allocating path; both produce bit-identical
        values.
        """
        arr = np.asarray(x)
        if not np.issubdtype(arr.dtype, np.floating):
            arr = arr.astype(np.float64)
        lead = arr.shape[:-1]
        n = self._shape[1]
        if arr.ndim == 0 or arr.shape[-1] != n:
            raise ValueError(
                f"input features {arr.shape[-1] if arr.ndim else 0} != "
                f"layer width {n}"
            )
        m = self._shape[0]
        cols = arr.reshape(-1, n).T  # engines use (n, tokens)
        tokens = cols.shape[1]
        if not tokens:
            # Zero tokens: nothing to plan or multiply.
            out = np.zeros((m, 0), dtype=arr.dtype).T.reshape(lead + (m,))
            return _add_bias(out, self.bias)
        # Batch-invariant mode plans at batch 1 regardless of the
        # observed batch: an auto spec replanned at the prefill batch
        # could pick a *different* engine than the lone decode-step
        # GEMV (engine_for(1)), and two engines' columns differ by more
        # than summation order -- so every call, batched or not, runs
        # on the engine a single column would use.
        engine = self.engine_for(1 if self._batch_invariant else tokens)
        if _obs.ACTIVE:
            # Observability on: wrap the product in a span and/or a
            # drift measurement.  Off (the default), this is one
            # module-attribute read and the call goes straight through.
            return self._apply_observed(engine, cols, lead, m, tokens)
        return self._apply(engine, cols, lead, m, tokens)

    def _apply(
        self,
        engine: MatmulEngine,
        cols: np.ndarray,
        lead: tuple,
        m: int,
        tokens: int,
        profiler=None,
    ) -> np.ndarray:
        """Run the engine over prepared ``(n, tokens)`` columns.

        *profiler* (a :class:`~repro.core.profiling.PhaseProfiler`) is
        forwarded to engines that take one; callers pass it only for
        engines with ``accepts_profiler`` set.
        """
        kwargs = {} if profiler is None else {"profiler": profiler}
        if (
            tokens > 1
            and self._batch_invariant
            and not getattr(engine, "batch_invariant", False)
        ):
            # Batch-invariant mode on an engine that is not invariant
            # by construction: compute one column at a time through the
            # engine's native single-column path, so every column's
            # bits match what a lone decode-step GEMV would produce.
            first = engine.matmul(cols[:, :1], **kwargs)
            out_cols = np.empty((m, tokens), dtype=first.dtype)
            out_cols[:, :1] = first
            for j in range(1, tokens):
                out_cols[:, j : j + 1] = engine.matmul(
                    cols[:, j : j + 1], **kwargs
                )
            out = out_cols.T.reshape(lead + (m,))
            if getattr(engine, "fused_epilogue", False):
                return out
            return _add_bias(out, self.bias)
        workspace = current_workspace()
        matmul_into = (
            getattr(engine, "matmul_into", None)
            if workspace is not None
            else None
        )
        if getattr(engine, "fused_epilogue", False):
            # Bias and activation already ran inside the engine's
            # epilogue; folding them again here would double-apply.
            rdt = engine.result_dtype(cols.dtype)
            if matmul_into is not None:
                out_cols = workspace.acquire("linear.out", (m, tokens), rdt)
                matmul_into(cols, out=out_cols, workspace=workspace, **kwargs)
                return out_cols.T.reshape(lead + (m,))
            return engine.matmul(cols, **kwargs).T.reshape(lead + (m,))
        if matmul_into is not None:
            # The engine writes its natural C-contiguous (m, tokens)
            # layout (fast row-slice accumulation); the bias fold then
            # transposes into a (tokens, m) activation buffer, leaving
            # the caller the same C-contiguous result layout -- and the
            # same bits -- as the allocating path's ``out + bias``.
            out_cols = workspace.acquire(
                "linear.out", (m, tokens), cols.dtype
            )
            matmul_into(cols, out=out_cols, workspace=workspace, **kwargs)
            if self.bias is not None:
                act = workspace.acquire(
                    "linear.act", (tokens, m), cols.dtype
                )
                np.add(out_cols.T, self._bias_for(cols.dtype), out=act)
                return act.reshape(lead + (m,))
            return out_cols.T.reshape(lead + (m,))
        out_cols = engine.matmul(cols, **kwargs)
        out = out_cols.T.reshape(lead + (m,))
        return _add_bias(out, self.bias)

    def _apply_observed(
        self,
        engine: MatmulEngine,
        cols: np.ndarray,
        lead: tuple,
        m: int,
        tokens: int,
    ) -> np.ndarray:
        """The observability-enabled spelling of :meth:`_apply`.

        Opens an ``engine.matmul`` span (tracing), routes the shared
        kernel profiler into engines that accept one so the span tree
        bottoms out in ``kernel.build/query/replace`` phases, records
        measured wall time against the planner's predicted cost (drift
        telemetry), and feeds the per-layer latency series in the
        metrics registry -- with the span's trace id as the bucket
        exemplar, so a slow bucket on /metrics links to a trace.  Kept
        out of :meth:`__call__` so the disabled path never sees any of
        it.
        """
        from repro.obs import trace as _trace

        backend = self.planned_backend(1 if self._batch_invariant else tokens)
        n = self._shape[1]
        profiler = None
        if _obs.TRACING and getattr(engine, "accepts_profiler", False):
            profiler = _trace.kernel_profiler()
        start = time.perf_counter()
        with _trace.span(
            "engine.matmul", backend=backend, m=m, n=n, batch=tokens
        ) as matmul_span:
            result = self._apply(
                engine, cols, lead, m, tokens, profiler=profiler
            )
        elapsed = time.perf_counter() - start
        ctx = (
            getattr(matmul_span, "context", None) if _obs.TRACING else None
        )
        self._matmul_series(backend, m, n).record(
            elapsed, trace_id=ctx.trace_id if ctx is not None else None
        )
        if _obs.DRIFT:
            from repro.obs.drift import record_measurement

            seconds, rec_tokens = elapsed, tokens
            if self._batch_invariant and tokens > 1:
                # A decode tick coalesces N sequences into one call,
                # but the planner priced -- and compile() recorded a
                # prediction for -- the per-sequence batch-1 GEMV.
                # Record the per-column cost on the batch-1 bucket so
                # decode-path shapes pair with their predictions in the
                # planner-regret report instead of landing on bucket
                # keys that have no prediction at all.
                seconds, rec_tokens = elapsed / tokens, 1
            record_measurement(
                backend,
                m,
                n,
                self.spec.bits,
                rec_tokens,
                seconds,
                mu=self.spec.mu,
                a_bits=self.spec.a_bits,
                machine=self.spec.machine
                if isinstance(self.spec.machine, str)
                else getattr(self.spec.machine, "name", "pc"),
            )
        return result

    def _matmul_series(self, backend: str, m: int, n: int):
        """This layer's exemplar-enabled latency histogram for
        *backend* in the unified registry (cached: one registry lookup
        per (layer, backend), not per call)."""
        cache = getattr(self, "_obs_series", None)
        if cache is None:
            cache = self._obs_series = {}
        hist = cache.get(backend)
        if hist is None:
            from repro.obs.metrics import (
                DEFAULT_LATENCY_BOUNDS,
                get_registry,
            )

            hist = cache[backend] = get_registry().histogram(
                "repro_engine_matmul_seconds",
                "per-layer engine matmul wall time",
                exemplar_bounds=DEFAULT_LATENCY_BOUNDS,
                backend=backend,
                m=m,
                n=n,
            )
        return hist


def make_linear(
    weight: np.ndarray,
    bias: np.ndarray | None = None,
    *,
    spec: QuantSpec | None = None,
    **legacy_kwargs,
):
    """Factory: dense :class:`Linear` when *spec* is None, else
    :class:`QuantLinear`.

    Model builders take this as their injection point so a whole network
    can be flipped between float execution, a pinned engine, or
    cost-model auto-dispatch with one argument.  *spec* also accepts a
    :class:`~repro.api.QuantConfig`; bare quantization kwargs take the
    deprecated-adapter path through :class:`QuantLinear`.
    """
    if spec is None and not legacy_kwargs:
        return Linear(weight, bias)
    return QuantLinear(weight, bias, spec=spec, **legacy_kwargs)
