"""Transformer encoder/decoder layers (paper Section II-C structure).

"An encoder layer includes one attention block structured as four
``(n x n)`` weight matrices and a feed-forward block with ``(n x 4n)``
and ``(4n x n)`` matrices"; decoders add a cross-attention block.  This
module builds exactly that, post-norm as in the original Transformer,
with all projection weights flowing through the pluggable linear
factory so encoder stacks can execute on BiQGEMM end to end -- or on
cost-model auto-dispatch (``QuantSpec(backend="auto")``), where the
attention and feed-forward shapes of one layer each resolve once in
the plan cache and all deeper layers reuse those plans for free.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import check_positive_int
from repro.nn.attention import MultiHeadAttention
from repro.nn.functional import layer_norm, relu
from repro.nn.linear import QuantSpec, make_linear, split_builder_spec


def _finish_build(model, qconfig) -> None:
    # spec=QuantConfig path: the stack was built float; quantize it in
    # place so glob overrides see the real layer paths (L0.attn.q, ...).
    if qconfig is not None:
        from repro.api.model import apply_config

        apply_config(model, qconfig)

__all__ = [
    "TransformerConfig",
    "TransformerEncoderLayer",
    "TransformerDecoderLayer",
    "TransformerEncoder",
]


def _ff_block(ff1, ff2, h: np.ndarray) -> np.ndarray:
    """``ff2(relu(ff1(h)))`` with the ReLU skipped when ``ff1``'s
    engine already fused it into its epilogue (bit-identical either
    way); unfused, the ReLU runs in place on ``ff1``'s output buffer.
    """
    inner = ff1(h)
    if getattr(ff1, "fused_activation", None) is None:
        inner = relu(inner, out=inner)
    return ff2(inner)


@dataclass(frozen=True)
class TransformerConfig:
    """Architecture hyper-parameters.

    ``dim`` is the paper's hidden size ``n``; ``ff_dim`` defaults to
    ``4 * dim`` as in the paper's feed-forward description.
    """

    dim: int
    heads: int
    ff_dim: int
    layers: int = 1

    def __post_init__(self) -> None:
        check_positive_int(self.dim, "dim")
        check_positive_int(self.heads, "heads")
        check_positive_int(self.ff_dim, "ff_dim")
        check_positive_int(self.layers, "layers")
        if self.dim % self.heads != 0:
            raise ValueError(
                f"heads={self.heads} must divide dim={self.dim}"
            )


def _init(rng: np.random.Generator, m: int, n: int) -> np.ndarray:
    # Xavier-style scale so activations stay O(1) through deep stacks.
    return rng.standard_normal((m, n)) / np.sqrt(n)


class TransformerEncoderLayer:
    """Self-attention + feed-forward with residuals and post-layernorm."""

    def __init__(
        self,
        config: TransformerConfig,
        rng: np.random.Generator,
        *,
        spec: QuantSpec | None = None,
    ):
        spec, qconfig = split_builder_spec(spec)
        d, f = config.dim, config.ff_dim
        self.config = config
        self.attn = MultiHeadAttention(
            _init(rng, d, d),
            _init(rng, d, d),
            _init(rng, d, d),
            _init(rng, d, d),
            heads=config.heads,
            spec=spec,
        )
        self.ff1 = make_linear(_init(rng, f, d), np.zeros(f), spec=spec)
        self.ff2 = make_linear(_init(rng, d, f), np.zeros(d), spec=spec)
        _finish_build(self, qconfig)

    def __call__(
        self, x: np.ndarray, *, mask: np.ndarray | None = None
    ) -> np.ndarray:
        """Apply to ``(batch, seq, dim)`` activations."""
        h = layer_norm(x + self.attn(x, mask=mask))
        return layer_norm(h + _ff_block(self.ff1, self.ff2, h))


class TransformerDecoderLayer:
    """Masked self-attention, cross-attention, feed-forward (post-norm)."""

    def __init__(
        self,
        config: TransformerConfig,
        rng: np.random.Generator,
        *,
        spec: QuantSpec | None = None,
    ):
        spec, qconfig = split_builder_spec(spec)
        d, f = config.dim, config.ff_dim
        self.config = config
        self.self_attn = MultiHeadAttention(
            _init(rng, d, d),
            _init(rng, d, d),
            _init(rng, d, d),
            _init(rng, d, d),
            heads=config.heads,
            spec=spec,
        )
        self.cross_attn = MultiHeadAttention(
            _init(rng, d, d),
            _init(rng, d, d),
            _init(rng, d, d),
            _init(rng, d, d),
            heads=config.heads,
            spec=spec,
        )
        self.ff1 = make_linear(_init(rng, f, d), np.zeros(f), spec=spec)
        self.ff2 = make_linear(_init(rng, d, f), np.zeros(d), spec=spec)
        _finish_build(self, qconfig)

    def __call__(
        self,
        x: np.ndarray,
        memory: np.ndarray,
        *,
        self_mask: np.ndarray | None = None,
    ) -> np.ndarray:
        """Decode ``(batch, seq, dim)`` against encoder *memory*."""
        if self_mask is None:
            seq = np.asarray(x).shape[1]
            self_mask = np.triu(np.ones((seq, seq), dtype=bool), k=1)
        h = layer_norm(x + self.self_attn(x, mask=self_mask))
        h = layer_norm(h + self.cross_attn(h, memory))
        return layer_norm(h + _ff_block(self.ff1, self.ff2, h))


class TransformerEncoder:
    """A stack of encoder layers (``config.layers`` deep)."""

    def __init__(
        self,
        config: TransformerConfig,
        rng: np.random.Generator,
        *,
        spec: QuantSpec | None = None,
    ):
        spec, qconfig = split_builder_spec(spec)
        self.config = config
        self.layers = [
            TransformerEncoderLayer(config, rng, spec=spec)
            for _ in range(config.layers)
        ]
        _finish_build(self, qconfig)

    def __call__(
        self, x: np.ndarray, *, mask: np.ndarray | None = None
    ) -> np.ndarray:
        """Run all layers over ``(batch, seq, dim)`` input."""
        h = np.asarray(x, dtype=np.float64)
        for layer in self.layers:
            h = layer(h, mask=mask)
        return h
