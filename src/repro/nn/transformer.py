"""Transformer encoder/decoder layers (paper Section II-C structure).

"An encoder layer includes one attention block structured as four
``(n x n)`` weight matrices and a feed-forward block with ``(n x 4n)``
and ``(4n x n)`` matrices"; decoders add a cross-attention block.  This
module builds exactly that, post-norm as in the original Transformer,
with all projection weights flowing through the pluggable linear
factory so encoder stacks can execute on BiQGEMM end to end -- or on
cost-model auto-dispatch (``QuantSpec(backend="auto")``), where the
attention and feed-forward shapes of one layer each resolve once in
the plan cache and all deeper layers reuse those plans for free.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import check_positive_int
from repro.nn.attention import MultiHeadAttention
from repro.nn.functional import layer_norm, relu
from repro.nn.linear import QuantSpec, make_linear, split_builder_spec


def _finish_build(model, qconfig) -> None:
    # spec=QuantConfig path: the stack was built float; quantize it in
    # place so glob overrides see the real layer paths (L0.attn.q, ...).
    if qconfig is not None:
        from repro.api.model import apply_config

        apply_config(model, qconfig)

__all__ = [
    "TransformerConfig",
    "TransformerEncoderLayer",
    "TransformerDecoderLayer",
    "TransformerEncoder",
]


def _ff_block(ff1, ff2, h: np.ndarray) -> np.ndarray:
    """``ff2(relu(ff1(h)))`` with the ReLU skipped when ``ff1``'s
    engine already fused it into its epilogue (bit-identical either
    way); unfused, the ReLU runs in place on ``ff1``'s output buffer.
    """
    inner = ff1(h)
    if getattr(ff1, "fused_activation", None) is None:
        inner = relu(inner, out=inner)
    return ff2(inner)


@dataclass(frozen=True)
class TransformerConfig:
    """Architecture hyper-parameters.

    ``dim`` is the paper's hidden size ``n``; ``ff_dim`` defaults to
    ``4 * dim`` as in the paper's feed-forward description.
    """

    dim: int
    heads: int
    ff_dim: int
    layers: int = 1

    def __post_init__(self) -> None:
        check_positive_int(self.dim, "dim")
        check_positive_int(self.heads, "heads")
        check_positive_int(self.ff_dim, "ff_dim")
        check_positive_int(self.layers, "layers")
        if self.dim % self.heads != 0:
            raise ValueError(
                f"heads={self.heads} must divide dim={self.dim}"
            )


def _init(rng: np.random.Generator, m: int, n: int) -> np.ndarray:
    # Xavier-style scale so activations stay O(1) through deep stacks.
    return rng.standard_normal((m, n)) / np.sqrt(n)


class TransformerEncoderLayer:
    """Self-attention + feed-forward with residuals and post-layernorm."""

    def __init__(
        self,
        config: TransformerConfig,
        rng: np.random.Generator,
        *,
        spec: QuantSpec | None = None,
    ):
        spec, qconfig = split_builder_spec(spec)
        d, f = config.dim, config.ff_dim
        self.config = config
        self.attn = MultiHeadAttention(
            _init(rng, d, d),
            _init(rng, d, d),
            _init(rng, d, d),
            _init(rng, d, d),
            heads=config.heads,
            spec=spec,
        )
        self.ff1 = make_linear(_init(rng, f, d), np.zeros(f), spec=spec)
        self.ff2 = make_linear(_init(rng, d, f), np.zeros(d), spec=spec)
        _finish_build(self, qconfig)

    def __call__(
        self, x: np.ndarray, *, mask: np.ndarray | None = None, cache=None
    ) -> np.ndarray:
        """Apply to ``(batch, seq, dim)`` activations.

        With *cache* (an empty :class:`repro.gen.KVCache`, batch 1)
        this is the prefill of an incremental sequence: the layer's
        projected K/V land in the cache for later :meth:`step` calls.
        """
        h = layer_norm(x + self.attn(x, mask=mask, cache=cache))
        return layer_norm(h + _ff_block(self.ff1, self.ff2, h))

    def step(self, x: np.ndarray, cache) -> np.ndarray:
        """One decode step over ``(1, 1, dim)``: self-attention against
        the cache (which the new token joins), then feed-forward.

        Bit-identical to the last position of a causally masked
        ``__call__`` over the whole prefix (the attention module's
        determinism contract plus per-position layernorm/residuals)."""
        h = layer_norm(x + self.attn.step(x, cache=cache))
        return layer_norm(h + _ff_block(self.ff1, self.ff2, h))

    def step_many(self, x: np.ndarray, caches) -> np.ndarray:
        """One decode step for several sequences: ``(n, 1, dim)``
        activations against the matching cache list.  Residuals and
        layernorm are per-row, so each row is bit-identical to a lone
        :meth:`step` (see :meth:`MultiHeadAttention.step_many`)."""
        h = layer_norm(x + self.attn.step_many(x, caches))
        return layer_norm(h + _ff_block(self.ff1, self.ff2, h))


class TransformerDecoderLayer:
    """Masked self-attention, cross-attention, feed-forward (post-norm)."""

    def __init__(
        self,
        config: TransformerConfig,
        rng: np.random.Generator,
        *,
        spec: QuantSpec | None = None,
    ):
        spec, qconfig = split_builder_spec(spec)
        d, f = config.dim, config.ff_dim
        self.config = config
        self.self_attn = MultiHeadAttention(
            _init(rng, d, d),
            _init(rng, d, d),
            _init(rng, d, d),
            _init(rng, d, d),
            heads=config.heads,
            spec=spec,
        )
        self.cross_attn = MultiHeadAttention(
            _init(rng, d, d),
            _init(rng, d, d),
            _init(rng, d, d),
            _init(rng, d, d),
            heads=config.heads,
            spec=spec,
        )
        self.ff1 = make_linear(_init(rng, f, d), np.zeros(f), spec=spec)
        self.ff2 = make_linear(_init(rng, d, f), np.zeros(d), spec=spec)
        _finish_build(self, qconfig)

    def __call__(
        self,
        x: np.ndarray,
        memory: np.ndarray,
        *,
        self_mask: np.ndarray | None = None,
        self_cache=None,
        cross_cache=None,
    ) -> np.ndarray:
        """Decode ``(batch, seq, dim)`` against encoder *memory*.

        The cache pair (empty :class:`repro.gen.KVCache` instances,
        batch 1) makes this the prefill of an incremental decode: the
        self-attention K/V of the prefix land in *self_cache* and the
        projected encoder memory lands in *cross_cache* (frozen -- the
        memory never changes, so steps only re-project the query).
        """
        if self_mask is None:
            seq = np.asarray(x).shape[1]
            self_mask = np.triu(np.ones((seq, seq), dtype=bool), k=1)
        h = layer_norm(x + self.self_attn(x, mask=self_mask, cache=self_cache))
        h = layer_norm(h + self.cross_attn(h, memory, cache=cross_cache))
        return layer_norm(h + _ff_block(self.ff1, self.ff2, h))

    def step(self, x: np.ndarray, self_cache, cross_cache) -> np.ndarray:
        """One decode step over ``(1, 1, dim)`` against the cache pair.

        *cross_cache* must have been populated (and frozen) by a
        prefill ``__call__``; *self_cache* grows by the new token."""
        h = layer_norm(x + self.self_attn.step(x, cache=self_cache))
        h = layer_norm(h + self.cross_attn.step(h, cache=cross_cache))
        return layer_norm(h + _ff_block(self.ff1, self.ff2, h))


class TransformerEncoder:
    """A stack of encoder layers (``config.layers`` deep)."""

    def __init__(
        self,
        config: TransformerConfig,
        rng: np.random.Generator,
        *,
        spec: QuantSpec | None = None,
    ):
        spec, qconfig = split_builder_spec(spec)
        self.config = config
        self.layers = [
            TransformerEncoderLayer(config, rng, spec=spec)
            for _ in range(config.layers)
        ]
        _finish_build(self, qconfig)

    def __call__(
        self, x: np.ndarray, *, mask: np.ndarray | None = None
    ) -> np.ndarray:
        """Run all layers over ``(batch, seq, dim)`` input."""
        h = np.asarray(x, dtype=np.float64)
        for layer in self.layers:
            h = layer(h, mask=mask)
        return h

    def init_cache(self, *, workspace=None, reserve: int | None = None):
        """Fresh per-layer KV caches for one incremental sequence.

        *workspace* must be long-lived (see :class:`repro.gen.KVCache`);
        *reserve* hints the initial bucket capacity (e.g. the prompt
        length plus the expected generation budget).
        """
        from repro.gen.cache import KVCache

        kwargs = {} if reserve is None else {"reserve": reserve}
        return [
            KVCache(
                self.config.heads,
                self.config.dim // self.config.heads,
                workspace=workspace,
                **kwargs,
            )
            for _ in self.layers
        ]

    def prefill(
        self, x: np.ndarray, caches, *, mask: np.ndarray | None = None
    ) -> np.ndarray:
        """Batched forward over the prompt that populates *caches*.

        *x* is ``(1, prompt, dim)``; *caches* is :meth:`init_cache`'s
        list (one per layer, all empty).  For the later steps to be
        bit-identical to a full recompute, *mask* must be the causal
        mask the recompute would use.
        """
        if len(caches) != len(self.layers):
            raise ValueError(
                f"expected {len(self.layers)} caches, got {len(caches)}"
            )
        h = np.asarray(x, dtype=np.float64)
        for layer, cache in zip(self.layers, caches):
            h = layer(h, mask=mask, cache=cache)
        return h

    def step(self, x: np.ndarray, caches) -> np.ndarray:
        """One decode step ``(1, 1, dim)`` through the whole stack."""
        if len(caches) != len(self.layers):
            raise ValueError(
                f"expected {len(self.layers)} caches, got {len(caches)}"
            )
        h = np.asarray(x, dtype=np.float64)
        for layer, cache in zip(self.layers, caches):
            h = layer.step(h, cache)
        return h

    def step_many(self, x: np.ndarray, cache_lists) -> np.ndarray:
        """One decode step for several sequences through the stack.

        *x* is ``(n, 1, dim)``; *cache_lists* holds one per-layer cache
        list (:meth:`init_cache`) per sequence.  Each output row is
        bit-identical to running that sequence's :meth:`step` alone --
        the scheduler's continuous-batching correctness contract.
        """
        for caches in cache_lists:
            if len(caches) != len(self.layers):
                raise ValueError(
                    f"expected {len(self.layers)} caches per sequence, "
                    f"got {len(caches)}"
                )
        h = np.asarray(x, dtype=np.float64)
        for j, layer in enumerate(self.layers):
            h = layer.step_many(h, [caches[j] for caches in cache_lists])
        return h
