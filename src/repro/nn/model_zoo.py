"""Model shapes from the paper's Section II-C and builders for them.

The paper sets its experimental matrix-size range from real NLP models:
Transformer base/big, BERT large, ALBERT xx-large (whose biggest matrix
is ``4K x 16K``, 256 MB in FP32) and the LAS ASR model (six bi-LSTM
encoder layers with ``2.5K x 5K`` weights, two ``1.2K x 1.2K`` decoder
layers).  ``MODEL_SHAPES`` records those dimensions;
:func:`model_gemm_shapes` expands a model into its per-layer GEMM
shapes for cost-model sweeps; :func:`model_backend_plan` runs the
dispatch planner over those shapes (which engine serves each layer at
a batch, on a machine); :func:`build_encoder` instantiates a runnable
random-weight encoder at (optionally scaled-down) size.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import check_positive_int
from repro.engine import QuantSpec
from repro.nn.transformer import TransformerConfig, TransformerEncoder

__all__ = [
    "ModelShape",
    "MODEL_SHAPES",
    "model_backend_plan",
    "model_gemm_shapes",
    "build_encoder",
]


@dataclass(frozen=True)
class ModelShape:
    """Headline dimensions of one Section II-C model.

    ``attention_dim`` is the hidden size ``n`` (attention matrices are
    ``n x n``); ``ff_dim`` the feed-forward inner width; ``layers`` the
    encoder depth; ``extra_gemms`` lists any additional named weight
    shapes (e.g. ALBERT's giant embedding-factorized matrix, LAS LSTM
    gates).
    """

    name: str
    attention_dim: int
    ff_dim: int
    layers: int
    heads: int
    extra_gemms: tuple[tuple[str, int, int], ...] = ()


MODEL_SHAPES: dict[str, ModelShape] = {
    "transformer-base": ModelShape(
        name="Transformer base", attention_dim=512, ff_dim=2048, layers=6, heads=8
    ),
    "transformer-big": ModelShape(
        name="Transformer big", attention_dim=1024, ff_dim=4096, layers=6, heads=16
    ),
    "bert-large": ModelShape(
        name="BERT large", attention_dim=1024, ff_dim=4096, layers=24, heads=16
    ),
    "albert-xxlarge": ModelShape(
        name="ALBERT xx-large",
        attention_dim=4096,
        ff_dim=16384,
        layers=12,
        heads=64,
        extra_gemms=(("ffn-biggest", 4096, 16384),),
    ),
    "las-asr": ModelShape(
        name="LAS (bi-LSTM ASR)",
        attention_dim=1280,
        ff_dim=1280,
        layers=6,
        heads=1,
        extra_gemms=(
            ("encoder-lstm-gates", 2560, 5120),  # the paper's 2.5K x 5K
            ("decoder-lstm-gates", 1280, 1280),  # the paper's 1.2K x 1.2K
        ),
    ),
}
"""Registry keyed by the short names the benches use."""


def model_gemm_shapes(key: str) -> list[tuple[str, int, int]]:
    """All weight-GEMM ``(name, m, n)`` shapes of one registered model.

    Attention blocks contribute four ``(d, d)`` projections per layer;
    feed-forward blocks contribute ``(ff, d)`` and ``(d, ff)``;
    ``extra_gemms`` are appended verbatim.  Names follow the dotted-path
    convention of :func:`repro.api.named_quant_layers`
    (``L0.attn.q``, ``L0.ffn.ff1``, ...), so one
    :class:`~repro.api.QuantConfig` override glob speaks to both this
    planner sweep and a real :func:`build_encoder` model.
    """
    try:
        shape = MODEL_SHAPES[key]
    except KeyError:
        raise ValueError(
            f"unknown model {key!r}; expected one of {sorted(MODEL_SHAPES)}"
        ) from None
    d, f = shape.attention_dim, shape.ff_dim
    out: list[tuple[str, int, int]] = []
    for layer in range(shape.layers):
        for proj in ("q", "k", "v", "o"):
            out.append((f"L{layer}.attn.{proj}", d, d))
        out.append((f"L{layer}.ffn.ff1", f, d))
        out.append((f"L{layer}.ffn.ff2", d, f))
    out.extend(shape.extra_gemms)
    return out


def model_backend_plan(
    key: str,
    *,
    batch: int = 1,
    spec: QuantSpec | None = None,
    config=None,
    machine: str | None = None,
) -> list[tuple[str, int, int, str]]:
    """Planner decisions for every weight GEMM of a registered model.

    Returns ``(layer_name, m, n, backend)`` rows -- the whole-model view
    of ``backend="auto"``: at decode batch the attention projections all
    land on BiQGEMM, while large batches (or many-bit specs) push the
    big feed-forward shapes onto the dense path.  Plans come from the
    shared plan cache, so a full BERT-large sweep prices each distinct
    shape once.

    Routes through the same :func:`repro.api.plan_layers` pass that
    :meth:`repro.api.QuantModel.compile` uses, so cost-model fixes and
    per-layer :class:`~repro.api.QuantConfig` overrides (pass *config*
    instead of *spec*) apply identically to sweeps and real models.
    """
    check_positive_int(batch, "batch")
    from repro.api.config import QuantConfig
    from repro.api.planner import plan_layers

    if config is not None and spec is not None:
        raise TypeError("pass either spec or config, not both")
    if config is None:
        config = QuantConfig.from_spec(spec or QuantSpec(backend="auto"))
    elif not isinstance(config, QuantConfig):
        raise TypeError(
            f"config must be a QuantConfig, got {type(config).__name__}"
        )
    plans = plan_layers(
        model_gemm_shapes(key), config, batch_hint=batch, machine=machine
    )
    return [(p.name, p.m, p.n, p.backend) for p in plans]


def build_encoder(
    key: str,
    *,
    layers: int | None = None,
    scale: int = 1,
    spec: QuantSpec | None = None,
    seed: int = 0,
) -> TransformerEncoder:
    """Instantiate a runnable random-weight encoder for a registered model.

    ``scale`` divides all widths (e.g. ``scale=8`` turns Transformer-big
    into a 128-wide miniature with identical topology) so full stacks
    stay tractable in pure Python; ``layers`` overrides the depth.
    Weights are seeded and Xavier-scaled.  ``spec`` accepts a
    :class:`~repro.nn.linear.QuantSpec` or a whole-model
    :class:`~repro.api.QuantConfig` (per-layer glob overrides applied
    by path -- the input :func:`repro.api.quantize` also takes).
    """
    check_positive_int(scale, "scale")
    shape = MODEL_SHAPES.get(key)
    if shape is None:
        raise ValueError(
            f"unknown model {key!r}; expected one of {sorted(MODEL_SHAPES)}"
        )
    dim = shape.attention_dim // scale
    ff = shape.ff_dim // scale
    heads = min(shape.heads, max(1, dim // 16))
    while dim % heads != 0:
        heads -= 1
    config = TransformerConfig(
        dim=dim,
        heads=heads,
        ff_dim=ff,
        layers=layers if layers is not None else shape.layers,
    )
    rng = np.random.default_rng(seed)
    return TransformerEncoder(config, rng, spec=spec)
