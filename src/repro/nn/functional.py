"""Stateless neural-network functions.

The non-GEMM operations the paper notes must stay in floating point
(Section II-A: "layer normalization and softmax operations for attention
blocks for Transformers demand floating-point computations") -- one of
the arguments for weight-only quantization, since BiQGEMM keeps
activations in float and needs no format conversions around these ops.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "softmax",
    "layer_norm",
    "relu",
    "gelu",
    "sigmoid",
    "tanh",
    "FUSIBLE_ACTIVATIONS",
    "activation_fn",
    "activation_result_dtype",
]


def softmax(
    x: np.ndarray, axis: int = -1, *, out: np.ndarray | None = None
) -> np.ndarray:
    """Numerically stable softmax along *axis*.

    Promotes to float64.  With *out* (shape/dtype of the promoted
    input; may alias *x*) the result is written in place, so the
    decode hot loop can route the attention probability matrix through
    the active workspace arena instead of allocating per step.

    The denominator is a strictly sequential left-fold sum (the last
    element of a running ``cumsum``), not ``np.sum``: numpy's pairwise
    reduction changes its association with the reduced length, while a
    left fold is invariant both to row count and to trailing
    exactly-zero entries (``s + 0.0 == s`` bitwise for the positive
    partial sums softmax produces).  Those two invariances are what
    make KV-cached single-token attention bit-identical to the masked
    full-sequence recompute: a causal row of length ``t`` and the same
    row padded with masked (``exp -> 0.0``) positions normalize to
    identical bits.
    """
    arr = np.asarray(x, dtype=np.float64)
    if out is None:
        out = np.empty_like(arr)
    else:
        out = _activation_out(arr, out)
    np.subtract(arr, arr.max(axis=axis, keepdims=True), out=out)
    np.exp(out, out=out)
    from repro.core.workspace import current_workspace

    workspace = current_workspace()
    if workspace is not None:
        scratch = workspace.acquire("softmax.cumsum", out.shape, out.dtype)
    else:
        scratch = np.empty_like(out)
    np.cumsum(out, axis=axis, out=scratch)
    last = [slice(None)] * out.ndim
    last[axis] = slice(-1, None)
    out /= scratch[tuple(last)]
    if workspace is not None:
        workspace.release(scratch)
    return out


def layer_norm(
    x: np.ndarray,
    gamma: np.ndarray | None = None,
    beta: np.ndarray | None = None,
    *,
    eps: float = 1e-5,
) -> np.ndarray:
    """Layer normalization over the last axis with optional affine."""
    arr = np.asarray(x, dtype=np.float64)
    mean = arr.mean(axis=-1, keepdims=True)
    var = arr.var(axis=-1, keepdims=True)
    out = (arr - mean) / np.sqrt(var + eps)
    if gamma is not None:
        out = out * np.asarray(gamma, dtype=np.float64)
    if beta is not None:
        out = out + np.asarray(beta, dtype=np.float64)
    return out


def _activation_out(arr: np.ndarray, out: np.ndarray | None) -> np.ndarray:
    """Validate an activation destination against the promoted input."""
    if out.shape != arr.shape:
        raise ValueError(
            f"out must have shape {arr.shape}, got {out.shape}"
        )
    if out.dtype != arr.dtype:
        raise ValueError(
            f"out dtype {out.dtype} != activation dtype {arr.dtype}"
        )
    if not out.flags.writeable:
        raise ValueError("out must be writeable")
    return out


def relu(x: np.ndarray, *, out: np.ndarray | None = None) -> np.ndarray:
    """Rectified linear unit.

    Dtype-preserving.  With *out* the result is written in place (the
    destination may alias *x*), eliminating the per-call allocation on
    the serving hot path.
    """
    arr = np.asarray(x)
    if out is None:
        return np.maximum(arr, 0)
    return np.maximum(arr, 0, out=_activation_out(arr, out))


def gelu(x: np.ndarray, *, out: np.ndarray | None = None) -> np.ndarray:
    """Gaussian error linear unit (tanh approximation, BERT-style).

    Promotes to float64.  The *out* path chains the same ufunc sequence
    in place -- bit-identical to the allocating form -- but *out* must
    not alias *x* (the input is read after *out* is first written).
    """
    arr = np.asarray(x, dtype=np.float64)
    if out is None:
        return 0.5 * arr * (
            1.0 + np.tanh(np.sqrt(2.0 / np.pi) * (arr + 0.044715 * arr**3))
        )
    out = _activation_out(arr, out)
    if np.may_share_memory(out, arr):
        raise ValueError("gelu out must not alias x")
    # Same op order as the allocating branch, so results stay
    # bit-identical: inner = tanh(sqrt(2/pi) * (arr + 0.044715*arr**3)).
    inner = arr**3
    inner *= 0.044715
    inner += arr
    inner *= np.sqrt(2.0 / np.pi)
    np.tanh(inner, out=inner)
    inner += 1.0
    np.multiply(0.5, arr, out=out)
    np.multiply(out, inner, out=out)
    return out


def sigmoid(x: np.ndarray, *, out: np.ndarray | None = None) -> np.ndarray:
    """Logistic sigmoid, numerically stable on both tails.

    Promotes to float64.  *out* may alias *x*: each element is read
    exactly once before its slot is written.
    """
    arr = np.asarray(x, dtype=np.float64)
    if out is None:
        out = np.empty_like(arr)
    else:
        out = _activation_out(arr, out)
    pos = arr >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-arr[pos]))
    ez = np.exp(arr[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out


def tanh(x: np.ndarray, *, out: np.ndarray | None = None) -> np.ndarray:
    """Hyperbolic tangent.  Promotes to float64; *out* may alias *x*."""
    arr = np.asarray(x, dtype=np.float64)
    if out is None:
        return np.tanh(arr)
    return np.tanh(arr, out=_activation_out(arr, out))


FUSIBLE_ACTIVATIONS: dict[str, object] = {
    "relu": relu,
    "gelu": gelu,
    "sigmoid": sigmoid,
    "tanh": tanh,
}
"""Activations the ``compiled`` engine can fuse into its epilogue.

Every entry accepts ``out=`` and, given the same float input, produces
results bit-identical to its allocating form -- the property the
fusion bit-identity tests pin.
"""


def activation_fn(name: str):
    """Look up a fusible activation by name."""
    try:
        return FUSIBLE_ACTIVATIONS[name]
    except KeyError:
        raise ValueError(
            f"unknown fusible activation {name!r}; expected one of "
            f"{sorted(FUSIBLE_ACTIVATIONS)}"
        ) from None


def activation_result_dtype(name: str, dtype) -> np.dtype:
    """Result dtype of activation *name* applied to *dtype* input.

    ``relu`` preserves the input dtype; the transcendental activations
    promote to float64 (matching their allocating forms above).
    """
    activation_fn(name)  # validate
    if name == "relu":
        return np.dtype(dtype)
    return np.dtype(np.float64)
