"""Stateless neural-network functions.

The non-GEMM operations the paper notes must stay in floating point
(Section II-A: "layer normalization and softmax operations for attention
blocks for Transformers demand floating-point computations") -- one of
the arguments for weight-only quantization, since BiQGEMM keeps
activations in float and needs no format conversions around these ops.
"""

from __future__ import annotations

import numpy as np

__all__ = ["softmax", "layer_norm", "relu", "gelu", "sigmoid", "tanh"]


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along *axis*."""
    arr = np.asarray(x, dtype=np.float64)
    shifted = arr - arr.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=axis, keepdims=True)


def layer_norm(
    x: np.ndarray,
    gamma: np.ndarray | None = None,
    beta: np.ndarray | None = None,
    *,
    eps: float = 1e-5,
) -> np.ndarray:
    """Layer normalization over the last axis with optional affine."""
    arr = np.asarray(x, dtype=np.float64)
    mean = arr.mean(axis=-1, keepdims=True)
    var = arr.var(axis=-1, keepdims=True)
    out = (arr - mean) / np.sqrt(var + eps)
    if gamma is not None:
        out = out * np.asarray(gamma, dtype=np.float64)
    if beta is not None:
        out = out + np.asarray(beta, dtype=np.float64)
    return out


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit."""
    return np.maximum(np.asarray(x), 0)


def gelu(x: np.ndarray) -> np.ndarray:
    """Gaussian error linear unit (tanh approximation, BERT-style)."""
    arr = np.asarray(x, dtype=np.float64)
    return 0.5 * arr * (
        1.0 + np.tanh(np.sqrt(2.0 / np.pi) * (arr + 0.044715 * arr**3))
    )


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Logistic sigmoid, numerically stable on both tails."""
    arr = np.asarray(x, dtype=np.float64)
    out = np.empty_like(arr)
    pos = arr >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-arr[pos]))
    ez = np.exp(arr[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out


def tanh(x: np.ndarray) -> np.ndarray:
    """Hyperbolic tangent."""
    return np.tanh(np.asarray(x, dtype=np.float64))
