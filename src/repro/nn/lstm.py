"""LSTM layers (the paper's Section II-C ASR workload).

LAS-style speech models stack bi-directional LSTMs whose gate
projections are large GEMMs -- the paper cites six encoder layers with
``(2.5K x 5K)`` weights.  The input-hidden and hidden-hidden projections
here flow through the pluggable linear factory, so a quantized LSTM runs
its recurrence on any registered engine.  The recurrence is the paper's
flagship GEMV regime -- one step sees ``batch`` columns, often 1 during
decoding -- so a ``QuantSpec(backend="auto")`` cell plans onto BiQGEMM;
pass ``batch_hint`` to pin the plan to the expected serving batch.

Gate layout follows the usual ``[i, f, g, o]`` stacking: ``W_ih`` is
``(4h, input_dim)`` and ``W_hh`` is ``(4h, h)``.
"""

from __future__ import annotations

import numpy as np

from repro._util import as_2d_float
from repro.nn.functional import sigmoid, tanh
from repro.nn.linear import QuantSpec, make_linear, split_builder_spec

__all__ = ["LSTMCell", "LSTMLayer", "BiLSTMLayer"]


class LSTMCell:
    """Single LSTM step with quantizable gate projections."""

    def __init__(
        self,
        w_ih: np.ndarray,
        w_hh: np.ndarray,
        bias: np.ndarray | None = None,
        *,
        spec: QuantSpec | None = None,
    ):
        spec, qconfig = split_builder_spec(spec)
        w_ih = as_2d_float(w_ih, "w_ih")
        w_hh = as_2d_float(w_hh, "w_hh")
        if w_ih.shape[0] % 4 != 0:
            raise ValueError(f"w_ih rows must be 4*hidden, got {w_ih.shape[0]}")
        hidden = w_ih.shape[0] // 4
        if w_hh.shape != (4 * hidden, hidden):
            raise ValueError(
                f"w_hh must be ({4 * hidden}, {hidden}), got {w_hh.shape}"
            )
        self.hidden = hidden
        self.input_dim = int(w_ih.shape[1])
        if bias is not None:
            bias = np.asarray(bias, dtype=np.float64)
            if bias.shape != (4 * hidden,):
                raise ValueError(
                    f"bias must have shape ({4 * hidden},), got {bias.shape}"
                )
        self.bias = bias
        self.ih = make_linear(w_ih, spec=spec)
        self.hh = make_linear(w_hh, spec=spec)
        if qconfig is not None:
            # spec=QuantConfig path: quantize the freshly-built float
            # gates in place (override paths: ``ih`` / ``hh``).
            from repro.api.model import apply_config

            apply_config(self, qconfig)

    def __call__(
        self, x: np.ndarray, state: tuple[np.ndarray, np.ndarray]
    ) -> tuple[np.ndarray, np.ndarray]:
        """One step: ``x`` is ``(batch, input_dim)``; returns ``(h, c)``."""
        h_prev, c_prev = state
        gates = self.ih(x) + self.hh(h_prev)
        if self.bias is not None:
            gates = gates + self.bias
        hid = self.hidden
        i = sigmoid(gates[..., 0 * hid : 1 * hid])
        f = sigmoid(gates[..., 1 * hid : 2 * hid])
        g = tanh(gates[..., 2 * hid : 3 * hid])
        o = sigmoid(gates[..., 3 * hid : 4 * hid])
        c = f * c_prev + i * g
        h = o * tanh(c)
        return h, c

    def zero_state(self, batch: int) -> tuple[np.ndarray, np.ndarray]:
        """All-zero ``(h, c)`` for *batch* sequences."""
        return (
            np.zeros((batch, self.hidden)),
            np.zeros((batch, self.hidden)),
        )


class LSTMLayer:
    """Unidirectional LSTM over a ``(batch, time, input_dim)`` sequence."""

    def __init__(self, cell: LSTMCell, *, reverse: bool = False):
        if not isinstance(cell, LSTMCell):
            raise TypeError(f"cell must be an LSTMCell, got {type(cell).__name__}")
        self.cell = cell
        self.reverse = reverse

    def __call__(self, x: np.ndarray) -> np.ndarray:
        """Returns the hidden sequence, ``(batch, time, hidden)``."""
        arr = np.asarray(x, dtype=np.float64)
        if arr.ndim != 3 or arr.shape[-1] != self.cell.input_dim:
            raise ValueError(
                f"x must be (batch, time, {self.cell.input_dim}), got {arr.shape}"
            )
        batch, time, _ = arr.shape
        state = self.cell.zero_state(batch)
        steps = range(time - 1, -1, -1) if self.reverse else range(time)
        outputs = np.empty((batch, time, self.cell.hidden))
        for t in steps:
            h, c = self.cell(arr[:, t, :], state)
            state = (h, c)
            outputs[:, t, :] = h
        return outputs


class BiLSTMLayer:
    """Bidirectional LSTM: concatenated forward and backward hiddens."""

    def __init__(self, fwd_cell: LSTMCell, bwd_cell: LSTMCell):
        if fwd_cell.input_dim != bwd_cell.input_dim:
            raise ValueError("forward/backward cells disagree on input_dim")
        self.fwd = LSTMLayer(fwd_cell)
        self.bwd = LSTMLayer(bwd_cell, reverse=True)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        """Returns ``(batch, time, fwd_hidden + bwd_hidden)``."""
        return np.concatenate([self.fwd(x), self.bwd(x)], axis=-1)
