"""Full encoder-decoder Transformer with greedy decoding.

The paper's Table I workload is an En-De NMT Transformer; this module
assembles the complete inference path -- embeddings, positional
encodings, encoder stack, decoder stack with causal masking, and the
vocabulary generator -- on top of the pluggable linear backends, so a
whole translation step can execute with every projection on BiQGEMM.
Greedy decoding is the paper's motivating regime for auto-dispatch:
with ``QuantSpec(backend="auto")`` the encoder sees the full source
batch while each decode step is GEMV-like, and every projection picks
its engine per observed batch through the shared plan cache.
(Weights here are random; the point is the runnable system and the
float-vs-quantized output comparison, not trained translation quality --
see DESIGN.md Section 2 on the BLEU substitution.)
"""

from __future__ import annotations

import numpy as np

from repro._util import check_positive_int
from repro.nn.embedding import Embedding, positional_encoding
from repro.nn.linear import QuantSpec, make_linear, split_builder_spec
from repro.nn.transformer import (
    TransformerConfig,
    TransformerDecoderLayer,
    TransformerEncoderLayer,
)

__all__ = ["Seq2SeqTransformer"]


class Seq2SeqTransformer:
    """Encoder-decoder Transformer for sequence-to-sequence inference.

    Parameters
    ----------
    config:
        Shared encoder/decoder architecture.
    vocab_size:
        Token vocabulary (shared between source and target).
    rng:
        Generator for the (Xavier-scaled) random weights.
    spec:
        Optional quantization spec applied to every projection,
        including the generator; or a whole-model
        :class:`~repro.api.QuantConfig` (override paths enumerate as
        ``enc0.attn.q`` ... ``dec0.ffn.ff1`` ... ``generator``).
    """

    def __init__(
        self,
        config: TransformerConfig,
        vocab_size: int,
        rng: np.random.Generator,
        *,
        spec: QuantSpec | None = None,
    ):
        check_positive_int(vocab_size, "vocab_size")
        spec, qconfig = split_builder_spec(spec)
        if vocab_size < 4:
            raise ValueError("vocab_size must be >= 4 (bos/eos/pad + tokens)")
        self.config = config
        self.vocab_size = vocab_size
        d = config.dim
        self.embedding = Embedding(
            rng.standard_normal((vocab_size, d)) / np.sqrt(d)
        )
        self.encoder_layers = [
            TransformerEncoderLayer(config, rng, spec=spec)
            for _ in range(config.layers)
        ]
        self.decoder_layers = [
            TransformerDecoderLayer(config, rng, spec=spec)
            for _ in range(config.layers)
        ]
        self.generator = make_linear(
            rng.standard_normal((vocab_size, d)) / np.sqrt(d), spec=spec
        )
        if qconfig is not None:
            from repro.api.model import apply_config

            apply_config(self, qconfig)

    # ------------------------------------------------------------------
    def encode(self, src_ids: np.ndarray) -> np.ndarray:
        """Source token ids ``(batch, src_len)`` -> memory
        ``(batch, src_len, dim)``."""
        ids = self._check_ids(src_ids)
        h = self.embedding(ids) + positional_encoding(
            ids.shape[1], self.config.dim
        )[None]
        for layer in self.encoder_layers:
            h = layer(h)
        return h

    def decode_step(
        self, tgt_ids: np.ndarray, memory: np.ndarray
    ) -> np.ndarray:
        """Target prefix ``(batch, t)`` -> next-token logits
        ``(batch, vocab)``."""
        ids = self._check_ids(tgt_ids)
        h = self.embedding(ids) + positional_encoding(
            ids.shape[1], self.config.dim
        )[None]
        for layer in self.decoder_layers:
            h = layer(h, memory)
        return self.generator(h[:, -1, :])

    def greedy_decode(
        self,
        src_ids: np.ndarray,
        *,
        bos: int = 1,
        eos: int = 2,
        max_len: int = 16,
        use_cache: bool = True,
    ) -> np.ndarray:
        """Greedy autoregressive decoding.

        Returns generated ids ``(batch, <=max_len)`` including the BOS
        column; rows stop extending (repeat EOS) once EOS is emitted.

        By default each row decodes incrementally against per-layer KV
        caches (:class:`repro.gen.KVCache`): the self-attention prefix
        and the projected encoder memory are computed once, so every
        new token costs one GEMV sweep instead of re-running the whole
        prefix -- the batch-1 regime the paper's kernels target.
        ``use_cache=False`` runs the legacy per-prefix recompute loop
        (deprecated; kept as the O(t^2) reference)."""
        check_positive_int(max_len, "max_len")
        for tok, name in ((bos, "bos"), (eos, "eos")):
            if not 0 <= tok < self.vocab_size:
                raise ValueError(f"{name}={tok} outside vocabulary")
        ids = self._check_ids(src_ids)
        memory = self.encode(ids)
        if not use_cache:
            import warnings

            warnings.warn(
                "greedy_decode(use_cache=False) re-runs the whole target "
                "prefix per emitted token and is deprecated; the cached "
                "path is the supported decode loop",
                DeprecationWarning,
                stacklevel=2,
            )
            return self._greedy_recompute(memory, ids.shape[0], bos, eos,
                                          max_len)
        rows = [
            self._greedy_row(memory[i : i + 1], bos, eos, max_len)
            for i in range(ids.shape[0])
        ]
        width = max(len(row) for row in rows)
        out = np.full((len(rows), width), eos, dtype=np.int64)
        for i, row in enumerate(rows):
            out[i, : len(row)] = row
        return out

    def _greedy_row(
        self, memory: np.ndarray, bos: int, eos: int, max_len: int
    ) -> list[int]:
        """Cached greedy decode of one sequence against its memory row.

        The first (BOS) position is a prefill ``__call__`` populating
        each decoder layer's self-attention cache and frozen
        cross-attention cache; every later position is a
        :meth:`~repro.nn.transformer.TransformerDecoderLayer.step`.
        """
        from repro.gen.cache import KVCache

        heads = self.config.heads
        head_dim = self.config.dim // heads
        self_caches = [KVCache(heads, head_dim) for _ in self.decoder_layers]
        cross_caches = [KVCache(heads, head_dim) for _ in self.decoder_layers]
        tokens = [bos]
        try:
            h = self.embedding(
                np.array([[bos]])
            ) + positional_encoding(1, self.config.dim)[None]
            for layer, sc, cc in zip(
                self.decoder_layers, self_caches, cross_caches
            ):
                h = layer(h, memory, self_cache=sc, cross_cache=cc)
            logits = self.generator(h[:, -1, :])
            while len(tokens) < max_len:
                nxt = int(np.argmax(logits))
                tokens.append(nxt)
                if nxt == eos:
                    break
                t = len(tokens) - 1
                h = self.embedding(
                    np.array([[nxt]])
                ) + positional_encoding(t + 1, self.config.dim)[t][None, None]
                for layer, sc, cc in zip(
                    self.decoder_layers, self_caches, cross_caches
                ):
                    h = layer.step(h, sc, cc)
                logits = self.generator(h[:, -1, :])
        finally:
            for cache in (*self_caches, *cross_caches):
                cache.close()
        return tokens

    def _greedy_recompute(
        self, memory: np.ndarray, batch: int, bos: int, eos: int, max_len: int
    ) -> np.ndarray:
        out = np.full((batch, 1), bos, dtype=np.int64)
        finished = np.zeros(batch, dtype=bool)
        for _ in range(max_len - 1):
            logits = self.decode_step(out, memory)
            nxt = logits.argmax(axis=1)
            nxt = np.where(finished, eos, nxt)
            out = np.concatenate([out, nxt[:, None]], axis=1)
            finished |= nxt == eos
            if finished.all():
                break
        return out

    # ------------------------------------------------------------------
    def _check_ids(self, ids: np.ndarray) -> np.ndarray:
        arr = np.asarray(ids)
        if arr.ndim != 2:
            raise ValueError(f"token ids must be (batch, len), got {arr.shape}")
        if not np.issubdtype(arr.dtype, np.integer):
            raise TypeError(f"token ids must be integers, got {arr.dtype}")
        return arr
