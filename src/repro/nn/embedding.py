"""Token embeddings and sinusoidal positional encodings."""

from __future__ import annotations

import numpy as np

from repro._util import as_2d_float, check_positive_int

__all__ = ["Embedding", "positional_encoding"]


class Embedding:
    """Lookup table mapping token ids to dense vectors."""

    def __init__(self, table: np.ndarray):
        self.table = as_2d_float(table, "table")

    @property
    def vocab_size(self) -> int:
        """Number of rows (distinct token ids)."""
        return int(self.table.shape[0])

    @property
    def dim(self) -> int:
        """Embedding width."""
        return int(self.table.shape[1])

    def __call__(self, ids: np.ndarray) -> np.ndarray:
        """Gather embeddings for integer *ids* of any shape."""
        idx = np.asarray(ids)
        if not np.issubdtype(idx.dtype, np.integer):
            raise TypeError(f"ids must be integers, got dtype {idx.dtype}")
        if idx.size and (idx.min() < 0 or idx.max() >= self.vocab_size):
            raise ValueError(
                f"ids out of range [0, {self.vocab_size}): "
                f"min={idx.min()}, max={idx.max()}"
            )
        return self.table[idx]


def positional_encoding(length: int, dim: int) -> np.ndarray:
    """Sinusoidal positions from "Attention Is All You Need".

    ``PE[pos, 2i] = sin(pos / 10000^(2i/dim))``,
    ``PE[pos, 2i+1] = cos(...)``; shape ``(length, dim)``.
    """
    check_positive_int(length, "length")
    check_positive_int(dim, "dim")
    pos = np.arange(length, dtype=np.float64)[:, None]
    i = np.arange(dim, dtype=np.float64)[None, :]
    angle = pos / np.power(10000.0, 2.0 * (i // 2) / dim)
    out = np.empty((length, dim), dtype=np.float64)
    out[:, 0::2] = np.sin(angle[:, 0::2])
    out[:, 1::2] = np.cos(angle[:, 1::2])
    return out
