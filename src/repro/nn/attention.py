"""Multi-head attention (the paper's Section II-C attention block).

One attention block holds four ``(n x n)`` projection matrices (Q, K, V
and the output projection) -- precisely the GEMMs the paper quantizes.
The projections are injected through the linear factory so the whole
block can run on any registered engine; with
``QuantSpec(backend="auto")`` all four share one plan-cache entry (same
``(m, n, bits)`` key), so the planner prices the shape once and every
projection follows the batch regime -- BiQGEMM for single-token
decoding, dense BLAS for long prefills.  The ``QK^T`` / ``AV`` products
operate on two activations and stay dense float (weight-only
quantization).

Determinism contract (the KV-cache bit-identity foundation)
-----------------------------------------------------------
Neither activation product may run through ``@``/``np.matmul`` or
``np.einsum``: BLAS retiles a GEMM by operand size, so the last row of
a ``(s, d) @ (d, t)`` product is not bit-equal to the ``(1, d) @ (d,
t)`` GEMV of the same row -- and einsum's iterator likewise regroups
its SIMD partial sums as the surrounding (non-contracted!) dimensions
change, so a one-query-row score product disagrees with the same row
of the nine-row product in the last ulp.  Both products are therefore
strict sequential left folds: an elementwise outer product followed by
a running ``cumsum`` along the contraction axis, whose summation
order per output element depends on nothing but the contraction
length (fixed ``head_dim`` for scores; for the context product over
the *variable* sequence axis, appending exactly-zero masked tails
leaves every prefix total bit-identical).  Combined with the
left-fold softmax (:func:`repro.nn.functional.softmax`) this makes a
single-token :meth:`MultiHeadAttention.step` against a KV cache
bit-identical to the corresponding row of the masked full-sequence
recompute -- the invariant every engine's decode path is tested
against.
"""

from __future__ import annotations

import numpy as np

from repro._util import check_positive_int
from repro.core.workspace import current_workspace
from repro.nn.functional import softmax
from repro.nn.linear import QuantSpec, make_linear, split_builder_spec

__all__ = ["MultiHeadAttention", "attn_context", "attn_scores"]

# Bound on the outer-product temporary the fold helpers materialize at
# once, in elements (~32 MiB of float64).  The fold walks the
# contraction axis in chunks of this budget, carrying the running sum
# between chunks, so a 512-token prefill peaks at the budget instead of
# the full (seq_q, seq_kv, head_dim) product (~8.6 GiB at seq=512,
# heads=8, head_dim=64).  Chunking never changes bits: seeding a
# chunk's first element with the carry keeps every output element's
# additions in exactly the unchunked left-fold order (and a decode
# step's product fits in one chunk anyway).
FOLD_BUDGET_ELEMS = 4 * 1024 * 1024


def _fold_chunk(total: int, slice_elems: int) -> int:
    """Chunk length along a contraction axis of *total* elements whose
    per-element outer-product slice holds *slice_elems* entries."""
    return max(1, min(total, FOLD_BUDGET_ELEMS // max(slice_elems, 1)))


def attn_scores(q: np.ndarray, k: np.ndarray, *, out=None) -> np.ndarray:
    """Unscaled attention scores ``q . k^T`` over the last axis.

    Shapes ``(..., heads, seq_q, head_dim)`` x ``(..., heads, seq_kv,
    head_dim) -> (..., heads, seq_q, seq_kv)``; a strict sequential
    left fold over ``head_dim``, computed in memory-bounded chunks (see
    :data:`FOLD_BUDGET_ELEMS`), so every score is bit-identical
    whatever the surrounding batch/sequence shape (see the module
    docstring).
    """
    d = q.shape[-1]
    slice_shape = np.broadcast_shapes(
        q.shape[:-1] + (1,), k.shape[:-2] + (1,) + k.shape[-2:-1]
    )
    chunk = _fold_chunk(d, int(np.prod(slice_shape, dtype=np.int64)))
    acc = None
    for start in range(0, d, chunk):
        stop = min(d, start + chunk)
        prod = q[..., :, :, None, start:stop] * k[..., None, :, start:stop]
        if acc is not None:
            prod[..., 0] += acc
        np.cumsum(prod, axis=-1, out=prod)
        acc = prod[..., -1]
        if stop < d:
            acc = acc.copy()  # detach the carry so the chunk buffer frees
    if out is None:
        return np.ascontiguousarray(acc)
    np.copyto(out, acc)
    return out


def attn_context(attn: np.ndarray, v: np.ndarray, *, out=None) -> np.ndarray:
    """Probability-weighted values ``attn . v``.

    Shapes ``(..., heads, seq_q, seq_kv)`` x ``(..., heads, seq_kv,
    head_dim) -> (..., heads, seq_q, head_dim)``.

    This contraction runs over the *variable* sequence axis -- the one
    that differs between a decode step (cache length ``t``) and the
    full recompute (final length ``T``).  Like :func:`attn_scores` it
    is a strict sequential left fold over memory-bounded chunks, so
    both chunk boundaries and appended masked positions (probability
    exactly ``0.0``) leave every prefix total bit-identical.
    """
    t = v.shape[-2]
    slice_shape = np.broadcast_shapes(
        attn.shape[:-1] + (1,), v.shape[:-2] + (1,) + v.shape[-1:]
    )
    chunk = _fold_chunk(t, int(np.prod(slice_shape, dtype=np.int64)))
    acc = None
    for start in range(0, t, chunk):
        stop = min(t, start + chunk)
        prod = (
            attn[..., :, start:stop, None] * v[..., None, start:stop, :]
        )
        if acc is not None:
            prod[..., 0, :] += acc
        np.cumsum(prod, axis=-2, out=prod)
        acc = prod[..., -1, :]
        if stop < t:
            acc = acc.copy()  # detach the carry so the chunk buffer frees
    if out is None:
        return np.ascontiguousarray(acc)
    np.copyto(out, acc)
    return out


class MultiHeadAttention:
    """Scaled dot-product attention with ``heads`` parallel heads.

    Parameters
    ----------
    wq, wk, wv, wo:
        Projection weights, each ``(dim, dim)``.
    heads:
        Head count; must divide ``dim``.
    spec:
        Optional :class:`~repro.nn.linear.QuantSpec` quantizing all four
        projections, or a whole-model :class:`~repro.api.QuantConfig`
        (overrides match the projection paths ``q``/``k``/``v``/``o``).
    """

    def __init__(
        self,
        wq: np.ndarray,
        wk: np.ndarray,
        wv: np.ndarray,
        wo: np.ndarray,
        *,
        heads: int,
        spec: QuantSpec | None = None,
    ):
        check_positive_int(heads, "heads")
        spec, qconfig = split_builder_spec(spec)
        dim = np.asarray(wq).shape[0]
        for name, w in (("wq", wq), ("wk", wk), ("wv", wv), ("wo", wo)):
            shape = np.asarray(w).shape
            if shape != (dim, dim):
                raise ValueError(f"{name} must be ({dim}, {dim}), got {shape}")
        if dim % heads != 0:
            raise ValueError(f"heads={heads} must divide dim={dim}")
        self.dim = int(dim)
        self.heads = heads
        self.head_dim = self.dim // heads
        self.q_proj = make_linear(wq, spec=spec)
        self.k_proj = make_linear(wk, spec=spec)
        self.v_proj = make_linear(wv, spec=spec)
        self.o_proj = make_linear(wo, spec=spec)
        if qconfig is not None:
            from repro.api.model import apply_config

            apply_config(self, qconfig)

    def _split(self, x: np.ndarray) -> np.ndarray:
        # (batch, seq, dim) -> (batch, heads, seq, head_dim)
        b, s, _ = x.shape
        return x.reshape(b, s, self.heads, self.head_dim).transpose(0, 2, 1, 3)

    def __call__(
        self,
        query: np.ndarray,
        key_value: np.ndarray | None = None,
        *,
        mask: np.ndarray | None = None,
        cache=None,
    ) -> np.ndarray:
        """Attend *query* over *key_value* (self-attention when omitted).

        Shapes: ``query`` is ``(batch, seq_q, dim)``; ``key_value`` is
        ``(batch, seq_kv, dim)``; ``mask`` broadcasts against
        ``(batch, heads, seq_q, seq_kv)`` with ``True`` = *masked out*.

        *cache* (a :class:`repro.gen.KVCache`, batch 1, empty) makes
        this the **prefill** of an incremental sequence: the projected
        K/V blocks are written into it so later :meth:`step` calls
        attend over them.  A cross-attention prefill (*key_value*
        given) freezes the cache -- the encoder memory never changes,
        so steps only re-project the query.
        """
        q_in = np.asarray(query, dtype=np.float64)
        if q_in.ndim != 3 or q_in.shape[-1] != self.dim:
            raise ValueError(
                f"query must be (batch, seq, {self.dim}), got {q_in.shape}"
            )
        kv_in = q_in if key_value is None else np.asarray(key_value, np.float64)
        q = self._split(self.q_proj(q_in))
        k = self._split(self.k_proj(kv_in))
        v = self._split(self.v_proj(kv_in))
        if cache is not None:
            if q_in.shape[0] != 1:
                raise ValueError(
                    f"a KV cache holds one sequence; got batch "
                    f"{q_in.shape[0]}"
                )
            if cache.length:
                raise ValueError(
                    "__call__ populates an empty cache (prefill); use "
                    "step() to extend one"
                )
            cache.append(k[0], v[0])
            if key_value is not None:
                cache.freeze()
        scores = attn_scores(q, k)
        scores /= np.sqrt(self.head_dim)
        if mask is not None:
            scores = np.where(np.asarray(mask, dtype=bool), -1e30, scores)
        attn = softmax(scores, out=scores)
        ctx = attn_context(attn, v)  # (batch, heads, seq_q, head_dim)
        b, _, s, _ = ctx.shape
        merged = ctx.transpose(0, 2, 1, 3).reshape(b, s, self.dim)
        return self.o_proj(merged)

    def step(self, query: np.ndarray, *, cache) -> np.ndarray:
        """One decode step: attend a single new token over the cache.

        *query* is ``(1, 1, dim)`` -- the new token's hidden state.
        For an open (self-attention) cache its projected K/V are
        appended first, so the token attends over every position
        including itself; a frozen (cross-attention) cache is read as
        is.  No mask is needed: the cache *is* the causal history.

        Returns ``(1, 1, dim)``, bit-identical to the last position of
        the full recompute (see the module docstring).
        """
        q_in = np.asarray(query, dtype=np.float64)
        if q_in.shape != (1, 1, self.dim):
            raise ValueError(
                f"step query must be (1, 1, {self.dim}), got {q_in.shape}"
            )
        q = self._split(self.q_proj(q_in))[0]  # (heads, 1, head_dim)
        if not cache.frozen:
            k_new = self._split(self.k_proj(q_in))[0]
            v_new = self._split(self.v_proj(q_in))[0]
            cache.append(k_new, v_new)
        k, v = cache.view()
        workspace = current_workspace()
        if workspace is not None:
            scores = workspace.acquire(
                "attn.scores", (self.heads, 1, k.shape[1]), np.float64
            )
            attn_scores(q, k, out=scores)
        else:
            scores = attn_scores(q, k)
        scores /= np.sqrt(self.head_dim)
        attn = softmax(scores, out=scores)
        ctx = attn_context(attn, v)  # (heads, 1, head_dim)
        if workspace is not None:
            workspace.release(scores)
        merged = ctx.transpose(1, 0, 2).reshape(1, 1, self.dim)
        return self.o_proj(merged)

    def step_many(self, queries: np.ndarray, caches) -> np.ndarray:
        """One decode step for *several* sequences at once.

        *queries* is ``(n, 1, dim)`` -- one new token per sequence --
        and *caches* the matching list of per-sequence KV caches.  The
        four projections run **batched** (n columns through one engine
        call -- the LUT-amortization win continuous batching exists
        for) while the attention itself runs per sequence against its
        own cache.  Under the batch-invariant contract every projected
        column is bit-identical to its lone-GEMV value, so the result
        row for each sequence is bit-identical to a separate
        :meth:`step` call.
        """
        q_in = np.asarray(queries, dtype=np.float64)
        n = len(caches)
        if q_in.shape != (n, 1, self.dim):
            raise ValueError(
                f"step_many queries must be ({n}, 1, {self.dim}), "
                f"got {q_in.shape}"
            )
        q = self._split(self.q_proj(q_in))  # (n, heads, 1, head_dim)
        open_caches = [c for c in caches if not c.frozen]
        if open_caches:
            if len(open_caches) != n:
                raise ValueError(
                    "step_many caches must be uniformly open or frozen"
                )
            k_new = self._split(self.k_proj(q_in))
            v_new = self._split(self.v_proj(q_in))
            for i, cache in enumerate(caches):
                cache.append(k_new[i], v_new[i])
        workspace = current_workspace()
        ctx = np.empty((n, self.heads, 1, self.head_dim))
        for i, cache in enumerate(caches):
            k, v = cache.view()
            if workspace is not None:
                scores = workspace.acquire(
                    "attn.scores", (self.heads, 1, k.shape[1]), np.float64
                )
                attn_scores(q[i], k, out=scores)
            else:
                scores = attn_scores(q[i], k)
            scores /= np.sqrt(self.head_dim)
            attn = softmax(scores, out=scores)
            attn_context(attn, v, out=ctx[i])
            if workspace is not None:
                workspace.release(scores)
        merged = ctx.transpose(0, 2, 1, 3).reshape(n, 1, self.dim)
        return self.o_proj(merged)
