"""Multi-head attention (the paper's Section II-C attention block).

One attention block holds four ``(n x n)`` projection matrices (Q, K, V
and the output projection) -- precisely the GEMMs the paper quantizes.
The projections are injected through the linear factory so the whole
block can run on any registered engine; with
``QuantSpec(backend="auto")`` all four share one plan-cache entry (same
``(m, n, bits)`` key), so the planner prices the shape once and every
projection follows the batch regime -- BiQGEMM for single-token
decoding, dense BLAS for long prefills.  The ``QK^T`` / ``AV`` products
operate on two activations and stay dense float (weight-only
quantization).
"""

from __future__ import annotations

import numpy as np

from repro._util import check_positive_int
from repro.nn.functional import softmax
from repro.nn.linear import QuantSpec, make_linear, split_builder_spec

__all__ = ["MultiHeadAttention"]


class MultiHeadAttention:
    """Scaled dot-product attention with ``heads`` parallel heads.

    Parameters
    ----------
    wq, wk, wv, wo:
        Projection weights, each ``(dim, dim)``.
    heads:
        Head count; must divide ``dim``.
    spec:
        Optional :class:`~repro.nn.linear.QuantSpec` quantizing all four
        projections, or a whole-model :class:`~repro.api.QuantConfig`
        (overrides match the projection paths ``q``/``k``/``v``/``o``).
    """

    def __init__(
        self,
        wq: np.ndarray,
        wk: np.ndarray,
        wv: np.ndarray,
        wo: np.ndarray,
        *,
        heads: int,
        spec: QuantSpec | None = None,
    ):
        check_positive_int(heads, "heads")
        spec, qconfig = split_builder_spec(spec)
        dim = np.asarray(wq).shape[0]
        for name, w in (("wq", wq), ("wk", wk), ("wv", wv), ("wo", wo)):
            shape = np.asarray(w).shape
            if shape != (dim, dim):
                raise ValueError(f"{name} must be ({dim}, {dim}), got {shape}")
        if dim % heads != 0:
            raise ValueError(f"heads={heads} must divide dim={dim}")
        self.dim = int(dim)
        self.heads = heads
        self.head_dim = self.dim // heads
        self.q_proj = make_linear(wq, spec=spec)
        self.k_proj = make_linear(wk, spec=spec)
        self.v_proj = make_linear(wv, spec=spec)
        self.o_proj = make_linear(wo, spec=spec)
        if qconfig is not None:
            from repro.api.model import apply_config

            apply_config(self, qconfig)

    def _split(self, x: np.ndarray) -> np.ndarray:
        # (batch, seq, dim) -> (batch, heads, seq, head_dim)
        b, s, _ = x.shape
        return x.reshape(b, s, self.heads, self.head_dim).transpose(0, 2, 1, 3)

    def __call__(
        self,
        query: np.ndarray,
        key_value: np.ndarray | None = None,
        *,
        mask: np.ndarray | None = None,
    ) -> np.ndarray:
        """Attend *query* over *key_value* (self-attention when omitted).

        Shapes: ``query`` is ``(batch, seq_q, dim)``; ``key_value`` is
        ``(batch, seq_kv, dim)``; ``mask`` broadcasts against
        ``(batch, heads, seq_q, seq_kv)`` with ``True`` = *masked out*.
        """
        q_in = np.asarray(query, dtype=np.float64)
        if q_in.ndim != 3 or q_in.shape[-1] != self.dim:
            raise ValueError(
                f"query must be (batch, seq, {self.dim}), got {q_in.shape}"
            )
        kv_in = q_in if key_value is None else np.asarray(key_value, np.float64)
        q = self._split(self.q_proj(q_in))
        k = self._split(self.k_proj(kv_in))
        v = self._split(self.v_proj(kv_in))
        scores = q @ k.transpose(0, 1, 3, 2) / np.sqrt(self.head_dim)
        if mask is not None:
            scores = np.where(np.asarray(mask, dtype=bool), -1e30, scores)
        attn = softmax(scores, axis=-1)
        ctx = attn @ v  # (batch, heads, seq_q, head_dim)
        b, _, s, _ = ctx.shape
        merged = ctx.transpose(0, 2, 1, 3).reshape(b, s, self.dim)
        return self.o_proj(merged)
