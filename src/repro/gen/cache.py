"""KV caches: the resident state of an autoregressive sequence.

BiQGEMM's headline regime is batch-1 GEMV decoding over a resident
quantized model (paper Fig. 10): each token step re-projects only the
*new* token and attends against the keys/values of everything already
generated.  This module holds that state -- one :class:`KVCache` per
attention site per sequence -- backed by a long-lived
:class:`~repro.core.workspace.Workspace` arena so thousands of decode
steps allocate nothing after the cache reaches its bucket capacity.

Capacity grows by power-of-two buckets (:func:`cache_bucket`): a grown
cache acquires the next bucket from the arena, copies the prefix, and
releases the old block, so concurrent sequences recycle each other's
outgrown blocks instead of churning the allocator.

Bit-identity contract: callers attend against :meth:`KVCache.view`,
an exact-length view of the bucket-capacity block.  The attention
products (:mod:`repro.nn.attention`) and softmax
(:mod:`repro.nn.functional`) are stride- and length-invariant, so the
padding beyond ``length`` never influences a single output bit -- it
is zero-filled anyway (defensive hygiene against NaN poisoning, not a
correctness requirement).
"""

from __future__ import annotations

import numpy as np

from repro._util import check_positive_int

__all__ = ["KVCache", "cache_bucket"]

#: Smallest capacity a cache starts at; buckets double from here.
MIN_BUCKET = 32


def cache_bucket(length: int, *, base: int = MIN_BUCKET) -> int:
    """The bucket capacity holding *length* positions: the smallest
    power-of-two multiple of *base* at or above it."""
    check_positive_int(length, "length")
    capacity = base
    while capacity < length:
        capacity *= 2
    return capacity


class KVCache:
    """Cached K/V blocks of one attention site for one sequence.

    Parameters
    ----------
    heads, head_dim:
        The attention geometry; blocks are ``(heads, capacity,
        head_dim)``.
    workspace:
        Optional :class:`~repro.core.workspace.Workspace` backing the
        blocks.  This must be a *long-lived* arena (e.g. the compiled
        model's KV arena), never a per-request one: per-request arenas
        are ``reset()`` at request boundaries, which would hand a live
        sequence's history to another borrower.  Growth and
        :meth:`close` use ``release()`` only, so many sequences share
        one arena safely.
    reserve:
        Initial capacity hint; rounded up to a bucket.
    frozen:
        Build the cache write-once (cross-attention: populated from the
        encoder memory at prefill, then only read).

    Not thread-safe: one sequence's steps are totally ordered by the
    scheduler.
    """

    def __init__(
        self,
        heads: int,
        head_dim: int,
        *,
        workspace=None,
        reserve: int = MIN_BUCKET,
        dtype=np.float64,
        frozen: bool = False,
    ):
        check_positive_int(heads, "heads")
        check_positive_int(head_dim, "head_dim")
        self.heads = int(heads)
        self.head_dim = int(head_dim)
        self.dtype = np.dtype(dtype)
        self._workspace = workspace
        self._length = 0
        self._capacity = cache_bucket(reserve)
        self._k = self._acquire(self._capacity)
        self._v = self._acquire(self._capacity)
        self.frozen = bool(frozen)
        self._closed = False

    def _acquire(self, capacity: int) -> np.ndarray:
        shape = (self.heads, capacity, self.head_dim)
        if self._workspace is not None:
            return self._workspace.acquire(
                "gen.kv", shape, self.dtype, zero=True
            )
        return np.zeros(shape, dtype=self.dtype)

    def _release(self, buf: np.ndarray) -> None:
        if self._workspace is not None:
            self._workspace.release(buf)

    @property
    def length(self) -> int:
        """Positions currently cached."""
        return self._length

    @property
    def capacity(self) -> int:
        """Positions the current bucket holds before the next growth."""
        return self._capacity

    @property
    def nbytes(self) -> int:
        """Resident bytes of the two blocks."""
        return self._k.nbytes + self._v.nbytes

    def append(self, k: np.ndarray, v: np.ndarray) -> None:
        """Append projected K/V blocks of shape ``(heads, s, head_dim)``.

        One call per prefill (``s`` = prompt length) and one per decode
        step (``s`` = 1); grows to the next bucket when full.
        """
        if self._closed:
            raise RuntimeError("cache is closed")
        if self.frozen:
            raise RuntimeError(
                "cache is frozen (write-once cross-attention memory)"
            )
        k = np.asarray(k)
        v = np.asarray(v)
        expect = (self.heads, k.shape[1], self.head_dim)
        if k.shape != expect or v.shape != expect:
            raise ValueError(
                f"k/v must be (heads={self.heads}, s, "
                f"head_dim={self.head_dim}); got {k.shape} / {v.shape}"
            )
        need = self._length + k.shape[1]
        if need > self._capacity:
            self._grow(cache_bucket(need))
        self._k[:, self._length : need] = k
        self._v[:, self._length : need] = v
        self._length = need

    def _grow(self, capacity: int) -> None:
        new_k = self._acquire(capacity)
        new_v = self._acquire(capacity)
        new_k[:, : self._length] = self._k[:, : self._length]
        new_v[:, : self._length] = self._v[:, : self._length]
        self._release(self._k)
        self._release(self._v)
        self._k, self._v = new_k, new_v
        self._capacity = capacity

    def freeze(self) -> None:
        """Seal the cache read-only (after cross-attention prefill)."""
        self.frozen = True

    def view(self) -> tuple[np.ndarray, np.ndarray]:
        """Exact-length ``(k, v)`` views, each ``(heads, length,
        head_dim)``, of the capacity blocks."""
        if self._closed:
            raise RuntimeError("cache is closed")
        return self._k[:, : self._length], self._v[:, : self._length]

    def close(self) -> None:
        """Return the blocks to the arena (sequence finished).

        Idempotent.  The cache must not be read afterwards.
        """
        if self._closed:
            return
        self._closed = True
        self._release(self._k)
        self._release(self._v)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else (
            "frozen" if self.frozen else "open"
        )
        return (
            f"KVCache(heads={self.heads}, head_dim={self.head_dim}, "
            f"length={self._length}/{self._capacity}, {state})"
        )
