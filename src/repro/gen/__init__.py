"""repro.gen -- autoregressive decode: KV caches, sampling, models.

The generation subsystem opens the workload BiQGEMM is best at
(batch-1 GEMV decode steps amortized over a resident quantized model,
paper Fig. 10): :class:`KVCache` holds a sequence's attention state on
a long-lived workspace arena, :class:`Sampler` turns logits into
tokens reproducibly, and :class:`DecoderLM` is the decoder-only
transformer those compose into.  ``CompiledModel.generate`` and the
serving :class:`repro.serve.SequenceScheduler` build on these.
"""

from repro.gen.cache import KVCache, cache_bucket
from repro.gen.model import DecoderLM
from repro.gen.sampler import Sampler

__all__ = ["DecoderLM", "KVCache", "Sampler", "cache_bucket"]
