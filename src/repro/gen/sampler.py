"""Token sampling: logits -> next token, reproducibly.

Decoding strategy lives here so the generate loop, the streaming
scheduler and the tests all share one definition of "what token comes
next".  Everything is deterministic given the constructor arguments:
greedy decoding consumes no randomness at all, and stochastic sampling
draws from a private :func:`numpy.random.default_rng` stream seeded at
construction -- the same seed replays the same token sequence, which
is what the ``generate()`` reproducibility tests pin.
"""

from __future__ import annotations

import numpy as np

from repro._util import check_positive_int

__all__ = ["Sampler"]


class Sampler:
    """Turns a logit vector into a token id.

    Parameters
    ----------
    temperature:
        ``0.0`` (default) is greedy argmax -- fully deterministic, no
        RNG draw.  Positive values divide the logits before the
        softmax; higher is flatter.
    top_k:
        Restrict sampling to the *k* highest logits (``None`` = full
        vocabulary).  Ignored under greedy decoding, where argmax
        already is "top-1".
    seed:
        Seed of the private RNG stream used by stochastic sampling.

    One sampler serves one sequence: the RNG stream advances once per
    stochastic :meth:`sample` call, so interleaving two sequences
    through a shared sampler would entangle their randomness.
    """

    def __init__(
        self,
        *,
        temperature: float = 0.0,
        top_k: int | None = None,
        seed: int = 0,
    ):
        temperature = float(temperature)
        if not temperature >= 0.0:  # catches NaN too
            raise ValueError(f"temperature must be >= 0, got {temperature}")
        if top_k is not None:
            check_positive_int(top_k, "top_k")
        self.temperature = temperature
        self.top_k = top_k
        self.seed = int(seed)
        self._rng = np.random.default_rng(self.seed)

    @property
    def greedy(self) -> bool:
        """Whether this sampler is deterministic argmax decoding."""
        return self.temperature == 0.0

    def sample(self, logits: np.ndarray) -> int:
        """The next token id for a ``(vocab,)`` (or ``(1, vocab)``)
        logit vector."""
        z = np.asarray(logits, dtype=np.float64).reshape(-1)
        if not z.size:
            raise ValueError("cannot sample from empty logits")
        if self.greedy:
            return int(np.argmax(z))
        z = z / self.temperature
        if self.top_k is not None and self.top_k < z.size:
            # Keep the k highest; -inf elsewhere so softmax zeroes them.
            kth = np.partition(z, -self.top_k)[-self.top_k]
            z = np.where(z >= kth, z, -np.inf)
        z = z - z.max()
        p = np.exp(z)
        cdf = np.cumsum(p)
        draw = self._rng.random() * cdf[-1]
        return int(min(np.searchsorted(cdf, draw, side="right"), z.size - 1))
