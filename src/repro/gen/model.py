"""DecoderLM: the decoder-only transformer the generate loop drives.

BiQGEMM's Fig. 10 workload is a language model emitting one token at a
time: every projection is an ``(m, n) x (n, 1)`` GEMV against resident
quantized weights.  :class:`DecoderLM` is that model -- token
embedding, sinusoidal positions, a causal
:class:`~repro.nn.transformer.TransformerEncoder` stack, and a
vocabulary head -- with the incremental API (:meth:`DecoderLM.prefill`
/ :meth:`DecoderLM.step`) the KV-cache machinery needs and the
seed-reproducible construction the whole-model artifact needs (float
embeddings are *regenerated* from the seed at load time, never
serialized; quantized projections ship as engine payloads).

Bit-identity and engine invariance
----------------------------------
A KV-cached :meth:`step` is bit-identical to the last position of the
full causal recompute only if every projection engine computes each
activation *column* identically whether it arrives alone (the step's
GEMV) or alongside the rest of the prefix (the recompute's batched
GEMM).  BiQGEMM's tiled kernels and the exact-integer int8 path are
column-invariant by construction; BLAS-backed engines are not (BLAS
retiles by operand size).  :func:`mark_batch_invariant` therefore
flips every quantized layer of a model into
:attr:`~repro.nn.linear.QuantLinear.batch_invariant` mode, where
non-invariant engines fall back to computing multi-column inputs one
column at a time -- invariance by construction, at batched-prefill
cost only on those engines.  :class:`DecoderLM` marks its own layers
at construction and :meth:`repro.api.CompiledModel.generate` re-marks
after quantization, so decode users never see the difference.
"""

from __future__ import annotations

import numpy as np

from repro._util import check_positive_int
from repro.nn.embedding import Embedding, positional_encoding
from repro.nn.linear import QuantSpec, make_linear, split_builder_spec
from repro.nn.transformer import TransformerConfig, TransformerEncoder

__all__ = ["DecoderLM", "causal_mask", "mark_batch_invariant"]


def causal_mask(seq: int) -> np.ndarray:
    """The ``(seq, seq)`` boolean mask hiding future positions
    (``True`` = masked out), shared by recompute and prefill so both
    see identical bits."""
    check_positive_int(seq, "seq")
    return np.triu(np.ones((seq, seq), dtype=bool), k=1)


def mark_batch_invariant(model) -> int:
    """Flip every quantized layer of *model* into batch-invariant mode.

    Returns the number of layers marked.  Idempotent; float
    :class:`~repro.nn.linear.Linear` layers (no engines) are skipped --
    a float model's decode is only ``allclose`` to its recompute, which
    is why the bit-identity contract is stated for quantized models.
    """
    from repro.api.model import named_quant_layers

    marked = 0
    for _, layer in named_quant_layers(model):
        mark = getattr(layer, "set_batch_invariant", None)
        if mark is not None:
            mark(True)
            marked += 1
    return marked


class DecoderLM:
    """Decoder-only causal transformer language model.

    Parameters
    ----------
    config:
        The stack architecture (:class:`TransformerConfig`).
    vocab_size:
        Token vocabulary; the embedding table and head are
        ``(vocab_size, dim)``.
    seed:
        Seed of the weight-initialization RNG.  Kept on the instance:
        the whole-model artifact records it and regenerates the float
        embedding/positional state bit-exactly at load, shipping only
        the quantized engine payloads.
    rng:
        Explicit generator instead of *seed* (mutually exclusive).  A
        model built this way cannot be saved as an artifact -- its
        float state is not reproducible from a recorded seed.
    spec:
        Optional :class:`~repro.nn.linear.QuantSpec` quantizing every
        projection and the head, or a whole-model
        :class:`~repro.api.QuantConfig` (override paths enumerate as
        ``L0.attn.q`` ... ``L1.ffn.ff1`` ..., ``lm_head``).
    """

    def __init__(
        self,
        config: TransformerConfig,
        vocab_size: int,
        *,
        seed: int | None = 0,
        rng: np.random.Generator | None = None,
        spec: QuantSpec | None = None,
    ):
        check_positive_int(vocab_size, "vocab_size")
        if vocab_size < 2:
            raise ValueError("vocab_size must be >= 2")
        if rng is not None:
            if seed not in (None, 0):
                raise ValueError("pass either seed or rng, not both")
            seed = None
        else:
            rng = np.random.default_rng(seed)
        spec, qconfig = split_builder_spec(spec)
        self.config = config
        self.vocab_size = int(vocab_size)
        self.seed = seed
        d = config.dim
        # RNG consumption order is the artifact's reproducibility
        # contract: embedding table, then the stack, then the head.
        self.embedding = Embedding(
            rng.standard_normal((vocab_size, d)) / np.sqrt(d)
        )
        self.stack = TransformerEncoder(config, rng, spec=spec)
        self.lm_head = make_linear(
            rng.standard_normal((vocab_size, d)) / np.sqrt(d), spec=spec
        )
        self._pos = positional_encoding(1, d)
        if qconfig is not None:
            from repro.api.model import apply_config

            apply_config(self, qconfig)
        mark_batch_invariant(self)

    # ------------------------------------------------------------------
    def _positions(self, length: int) -> np.ndarray:
        """Rows ``0..length-1`` of the positional table (grown on
        demand; each row is independent of the table length, so growth
        never changes existing bits)."""
        if self._pos.shape[0] < length:
            size = self._pos.shape[0]
            while size < length:
                size *= 2
            self._pos = positional_encoding(size, self.config.dim)
        return self._pos[:length]

    def _check_ids(self, ids) -> np.ndarray:
        arr = np.asarray(ids)
        if arr.ndim != 2:
            raise ValueError(
                f"token ids must be (batch, len), got {arr.shape}"
            )
        if not np.issubdtype(arr.dtype, np.integer):
            raise TypeError(f"token ids must be integers, got {arr.dtype}")
        if arr.size:
            # Out-of-range ids must fail loudly here: negative ids
            # would otherwise wrap silently through numpy indexing into
            # the wrong embedding row, and ids >= vocab_size would
            # surface as an IndexError deep in the forward (a 500 at
            # the serving boundary instead of a 400 ValueError).
            lo, hi = int(arr.min()), int(arr.max())
            if lo < 0 or hi >= self.vocab_size:
                raise ValueError(
                    f"token ids must be in [0, {self.vocab_size}), got "
                    f"values in [{lo}, {hi}]"
                )
        return arr

    def _embed(self, ids: np.ndarray) -> np.ndarray:
        return self.embedding(ids) + self._positions(ids.shape[1])[None]

    # ------------------------------------------------------------------
    def __call__(self, ids: np.ndarray) -> np.ndarray:
        """Full causal forward: ids ``(batch, seq)`` -> logits
        ``(batch, seq, vocab)``.

        The recompute reference for the incremental path: position
        ``t``'s logits here are bit-identical to the :meth:`step` that
        produced token ``t+1`` (quantized models; see the module
        docstring).
        """
        ids = self._check_ids(ids)
        h = self.stack(self._embed(ids), mask=causal_mask(ids.shape[1]))
        return self.lm_head(h)

    def init_cache(self, *, workspace=None, reserve: int | None = None):
        """Per-layer :class:`~repro.gen.KVCache` list for one sequence
        (see :meth:`TransformerEncoder.init_cache`)."""
        return self.stack.init_cache(workspace=workspace, reserve=reserve)

    def prefill(self, ids: np.ndarray, caches) -> np.ndarray:
        """Batched pass over the prompt ``(1, prompt_len)`` populating
        *caches*; returns the last position's logits ``(1, vocab)``."""
        ids = self._check_ids(ids)
        if ids.shape[0] != 1:
            raise ValueError(
                f"prefill handles one sequence, got batch {ids.shape[0]}"
            )
        if not ids.shape[1]:
            raise ValueError("prefill needs a non-empty prompt")
        h = self.stack.prefill(
            self._embed(ids), caches, mask=causal_mask(ids.shape[1])
        )
        return self.lm_head(h[:, -1, :])

    def step(self, token: int, caches) -> np.ndarray:
        """One decode step: *token* joins the sequence at position
        ``caches[0].length``; returns next-token logits ``(1, vocab)``."""
        if not caches:
            raise ValueError("step needs the prefilled cache list")
        pos = caches[0].length
        ids = np.asarray(token, dtype=np.int64).reshape(1, 1)
        x = self.embedding(ids) + self._positions(pos + 1)[pos][None, None]
        h = self.stack.step(x, caches)
        return self.lm_head(h[:, -1, :])

    def step_many(self, tokens, cache_lists) -> np.ndarray:
        """One decode step for several sequences at once.

        *tokens* is one new token id per sequence; *cache_lists* the
        matching per-sequence cache lists (each at its own position).
        Returns ``(n, vocab)`` logits, each row bit-identical to a lone
        :meth:`step` for that sequence -- the continuous-batching
        scheduler coalesces concurrent decodes through here so all
        projections share one engine call per layer.
        """
        if not cache_lists:
            raise ValueError("step_many needs at least one sequence")
        if len(tokens) != len(cache_lists):
            raise ValueError(
                f"got {len(tokens)} tokens for {len(cache_lists)} caches"
            )
        positions = [caches[0].length for caches in cache_lists]
        ids = np.asarray(tokens, dtype=np.int64).reshape(-1, 1)
        table = self._positions(max(positions) + 1)
        x = self.embedding(ids) + table[positions][:, None, :]
        h = self.stack.step_many(x, cache_lists)
        return self.lm_head(h[:, -1, :])


# The model walker collapses the ``stack`` segment so layer paths
# enumerate exactly like the encoder builders' (``L0.attn.q``, ...,
# ``lm_head``): one override glob speaks to both model families.
from repro.api.model import _ATTR_ALIASES as _API_ATTR_ALIASES  # noqa: E402

_API_ATTR_ALIASES[DecoderLM] = {"stack": ""}
