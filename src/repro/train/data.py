"""Synthetic teacher-student classification task.

Inputs are standard-normal vectors; labels are the argmax output of a
fixed random *teacher* MLP.  A student trained on such labels develops
fine decision boundaries whose fidelity degrades measurably under
aggressive weight quantization -- the property that makes the task a
usable stand-in for the paper's BLEU-vs-bits Table I.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import check_positive_int

__all__ = ["TeacherTask", "make_teacher_task"]


@dataclass(frozen=True)
class TeacherTask:
    """A generated dataset split into train and test."""

    x_train: np.ndarray
    y_train: np.ndarray
    x_test: np.ndarray
    y_test: np.ndarray
    classes: int


def make_teacher_task(
    *,
    train_n: int = 4000,
    test_n: int = 2000,
    dim: int = 32,
    hidden: int = 48,
    classes: int = 8,
    seed: int = 0,
) -> TeacherTask:
    """Generate a teacher-labelled classification dataset.

    The teacher is a fixed 2-layer tanh MLP with Xavier-scaled random
    weights; labels are its argmax outputs.  Everything is seeded so the
    Table I proxy is reproducible run to run.
    """
    check_positive_int(train_n, "train_n")
    check_positive_int(test_n, "test_n")
    check_positive_int(dim, "dim")
    check_positive_int(hidden, "hidden")
    check_positive_int(classes, "classes")
    if classes < 2:
        raise ValueError("classes must be >= 2")
    rng = np.random.default_rng(seed)
    w1 = rng.standard_normal((hidden, dim)) / np.sqrt(dim)
    w2 = rng.standard_normal((classes, hidden)) / np.sqrt(hidden)

    def teacher(x: np.ndarray) -> np.ndarray:
        return np.tanh(x @ w1.T) @ w2.T

    x_all = rng.standard_normal((train_n + test_n, dim))
    y_all = teacher(x_all).argmax(axis=1)
    return TeacherTask(
        x_train=x_all[:train_n],
        y_train=y_all[:train_n],
        x_test=x_all[train_n:],
        y_test=y_all[train_n:],
        classes=classes,
    )
