"""Quantization-aware training by occasional weight distortion.

The paper's Table I BCQ numbers come from *retraining* with the
DeepTwist algorithm (paper reference [48]): every ``distortion_step``
SGD steps, the float weights are snapped to their quantized
reconstruction and training continues from the distorted point.  The
model thus learns to sit in regions where quantization is cheap, closing
much of the post-training-quantization gap at low bit widths.

This module implements that loop on the numpy MLP substrate, giving the
Table I proxy its QAT-vs-PTQ comparison (paper message: 2-3-bit BCQ is
usable *because* of retraining).

:func:`train_qat_quantized` closes the loop with deployment: it exports
the QAT result straight into a :class:`~repro.api.QuantConfig` and a
:class:`~repro.api.QuantModel`, so the retrained weights flow into the
same quantize -> compile -> serve pipeline (and v3 artifact) as any
other model -- QAT at ``bits`` then serving at ``bits`` is one call.
"""

from __future__ import annotations

import numpy as np

from repro._util import check_positive_int
from repro.quant.bcq import bcq_quantize
from repro.train.data import TeacherTask
from repro.train.mlp import MLPClassifier

__all__ = [
    "distort_weights",
    "qat_vs_ptq",
    "train_qat",
    "train_qat_quantized",
]


def distort_weights(
    model: MLPClassifier, bits: int, *, method: str = "greedy"
) -> None:
    """Snap every weight matrix to its BCQ reconstruction, in place.

    One DeepTwist distortion step: ``w <- dequantize(quantize(w))``.
    Biases are untouched (the paper quantizes weights only).
    """
    check_positive_int(bits, "bits", upper=8)
    for i, w in enumerate(model.weights):
        model.weights[i] = bcq_quantize(w, bits, method=method).dequantize()


def train_qat(
    task: TeacherTask,
    *,
    bits: int,
    dims: tuple[int, ...] | None = None,
    epochs: int = 25,
    finetune_epochs: int = 12,
    method: str = "greedy",
    lr: float = 0.1,
    finetune_lr: float = 0.02,
    seed: int = 0,
    base_model: MLPClassifier | None = None,
) -> tuple[MLPClassifier, float]:
    """Retrain with occasional weight distortion; return the final
    *deployable quantized* model and its test accuracy.

    Follows the paper's protocol ("we retrain the model using
    quantization-aware training algorithm introduced in [48]"): start
    from a trained float baseline (*base_model*, or train one for
    *epochs*), then fine-tune for *finetune_epochs* rounds of
    distort-then-SGD at a reduced learning rate.  A final distortion
    snaps the weights onto the BCQ-representable point, so the returned
    accuracy is exactly what deployment at ``bits`` achieves.
    """
    check_positive_int(epochs, "epochs")
    check_positive_int(finetune_epochs, "finetune_epochs")
    check_positive_int(bits, "bits", upper=8)
    if dims is None:
        dims = (task.x_train.shape[1], 64, 48, task.classes)
    if base_model is None:
        model = MLPClassifier(dims, seed=seed + 1)
        model.fit(task.x_train, task.y_train, epochs=epochs, seed=seed + 2)
    else:
        model = base_model.with_transformed_weights(lambda w: w)

    # Checkpoint selection on the *training* set (no test leakage):
    # every distortion point is a deployable quantized model; keep the
    # best.  The first distortion point is exactly the PTQ model, so
    # QAT can only match or improve it.
    best_model = None
    best_train_acc = -1.0
    for epoch in range(finetune_epochs + 1):
        distort_weights(model, bits, method=method)
        train_acc = model.accuracy(task.x_train, task.y_train)
        if train_acc > best_train_acc:
            best_train_acc = train_acc
            best_model = model.with_transformed_weights(lambda w: w)
        if epoch == finetune_epochs:
            break
        model.fit(
            task.x_train,
            task.y_train,
            epochs=1,
            lr=finetune_lr,
            seed=seed + 100 + epoch,
        )
    assert best_model is not None
    return best_model, best_model.accuracy(task.x_test, task.y_test)


def train_qat_quantized(
    task: TeacherTask,
    *,
    bits: int,
    backend: str = "auto",
    overrides=None,
    config=None,
    **train_kwargs,
):
    """QAT -> deployable quantized model in one call.

    Runs :func:`train_qat`, then exports the result straight into the
    model-level API: the training settings become a
    :class:`~repro.api.QuantConfig` (``bits`` and ``method`` match the
    distortion loop, so quantization at serve time lands exactly on the
    weights QAT converged to), and the retrained classifier is lifted
    through :func:`repro.api.quantize`.

    Returns ``(quant_model, test_accuracy)``; the config rides on
    ``quant_model.config``, ready for ``.compile(batch_hint=...)`` and
    ``repro.api.save``.  Pass *config* to supply a fully custom
    :class:`~repro.api.QuantConfig` (its ``bits``/``method`` must match
    the training *bits*), or *overrides* to attach per-layer globs
    (``{"fc.0": {"backend": "dense"}}``) to the derived one.
    """
    from repro.api import QuantConfig, quantize

    method = train_kwargs.get("method", "greedy")
    if config is None:
        config = QuantConfig(
            bits=bits,
            method=method,
            backend=backend,
            overrides=dict(overrides or {}),
        )
    else:
        if overrides is not None:
            raise TypeError("pass either config or overrides, not both")
        if (config.bits, config.method) != (bits, method):
            raise ValueError(
                f"config (bits={config.bits}, method={config.method!r}) "
                f"disagrees with the QAT settings (bits={bits}, "
                f"method={method!r}); serving would re-quantize away "
                "from the retrained point"
            )
    model, accuracy = train_qat(task, bits=bits, **train_kwargs)
    return quantize(model, config), accuracy


def qat_vs_ptq(
    task: TeacherTask,
    *,
    bits_list: tuple[int, ...] = (1, 2, 3),
    epochs: int = 25,
    method: str = "greedy",
    seed: int = 0,
) -> list[dict[str, float]]:
    """Compare QAT against PTQ at each bit width on one task.

    Returns one dict per bit width with ``ptq_accuracy``,
    ``qat_accuracy`` and the shared ``float_accuracy`` baseline.  The
    expected shape (paper Table I came from retraining): QAT recovers a
    large part of the PTQ drop at 2-3 bits.
    """
    check_positive_int(epochs, "epochs")
    dims = (task.x_train.shape[1], 64, 48, task.classes)
    float_model = MLPClassifier(dims, seed=seed + 1)
    float_model.fit(task.x_train, task.y_train, epochs=epochs, seed=seed + 2)
    float_acc = float_model.accuracy(task.x_test, task.y_test)

    rows: list[dict[str, float]] = []
    for bits in bits_list:
        ptq = float_model.with_transformed_weights(
            lambda w, b=bits: bcq_quantize(w, b, method=method).dequantize()
        )
        ptq_acc = ptq.accuracy(task.x_test, task.y_test)
        _, qat_acc = train_qat(
            task,
            bits=bits,
            dims=dims,
            epochs=epochs,
            method=method,
            seed=seed,
            base_model=float_model,
        )
        rows.append(
            {
                "bits": float(bits),
                "float_accuracy": float_acc,
                "ptq_accuracy": ptq_acc,
                "qat_accuracy": qat_acc,
            }
        )
    return rows
