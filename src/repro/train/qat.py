"""Quantization-aware training by occasional weight distortion.

The paper's Table I BCQ numbers come from *retraining* with the
DeepTwist algorithm (paper reference [48]): every ``distortion_step``
SGD steps, the float weights are snapped to their quantized
reconstruction and training continues from the distorted point.  The
model thus learns to sit in regions where quantization is cheap, closing
much of the post-training-quantization gap at low bit widths.

This module implements that loop on the numpy MLP substrate, giving the
Table I proxy its QAT-vs-PTQ comparison (paper message: 2-3-bit BCQ is
usable *because* of retraining).
"""

from __future__ import annotations

import numpy as np

from repro._util import check_positive_int
from repro.quant.bcq import bcq_quantize
from repro.train.data import TeacherTask
from repro.train.mlp import MLPClassifier

__all__ = ["distort_weights", "train_qat", "qat_vs_ptq"]


def distort_weights(
    model: MLPClassifier, bits: int, *, method: str = "greedy"
) -> None:
    """Snap every weight matrix to its BCQ reconstruction, in place.

    One DeepTwist distortion step: ``w <- dequantize(quantize(w))``.
    Biases are untouched (the paper quantizes weights only).
    """
    check_positive_int(bits, "bits", upper=8)
    for i, w in enumerate(model.weights):
        model.weights[i] = bcq_quantize(w, bits, method=method).dequantize()


def train_qat(
    task: TeacherTask,
    *,
    bits: int,
    dims: tuple[int, ...] | None = None,
    epochs: int = 25,
    finetune_epochs: int = 12,
    method: str = "greedy",
    lr: float = 0.1,
    finetune_lr: float = 0.02,
    seed: int = 0,
    base_model: MLPClassifier | None = None,
) -> tuple[MLPClassifier, float]:
    """Retrain with occasional weight distortion; return the final
    *deployable quantized* model and its test accuracy.

    Follows the paper's protocol ("we retrain the model using
    quantization-aware training algorithm introduced in [48]"): start
    from a trained float baseline (*base_model*, or train one for
    *epochs*), then fine-tune for *finetune_epochs* rounds of
    distort-then-SGD at a reduced learning rate.  A final distortion
    snaps the weights onto the BCQ-representable point, so the returned
    accuracy is exactly what deployment at ``bits`` achieves.
    """
    check_positive_int(epochs, "epochs")
    check_positive_int(finetune_epochs, "finetune_epochs")
    check_positive_int(bits, "bits", upper=8)
    if dims is None:
        dims = (task.x_train.shape[1], 64, 48, task.classes)
    if base_model is None:
        model = MLPClassifier(dims, seed=seed + 1)
        model.fit(task.x_train, task.y_train, epochs=epochs, seed=seed + 2)
    else:
        model = base_model.with_transformed_weights(lambda w: w)

    # Checkpoint selection on the *training* set (no test leakage):
    # every distortion point is a deployable quantized model; keep the
    # best.  The first distortion point is exactly the PTQ model, so
    # QAT can only match or improve it.
    best_model = None
    best_train_acc = -1.0
    for epoch in range(finetune_epochs + 1):
        distort_weights(model, bits, method=method)
        train_acc = model.accuracy(task.x_train, task.y_train)
        if train_acc > best_train_acc:
            best_train_acc = train_acc
            best_model = model.with_transformed_weights(lambda w: w)
        if epoch == finetune_epochs:
            break
        model.fit(
            task.x_train,
            task.y_train,
            epochs=1,
            lr=finetune_lr,
            seed=seed + 100 + epoch,
        )
    assert best_model is not None
    return best_model, best_model.accuracy(task.x_test, task.y_test)


def qat_vs_ptq(
    task: TeacherTask,
    *,
    bits_list: tuple[int, ...] = (1, 2, 3),
    epochs: int = 25,
    method: str = "greedy",
    seed: int = 0,
) -> list[dict[str, float]]:
    """Compare QAT against PTQ at each bit width on one task.

    Returns one dict per bit width with ``ptq_accuracy``,
    ``qat_accuracy`` and the shared ``float_accuracy`` baseline.  The
    expected shape (paper Table I came from retraining): QAT recovers a
    large part of the PTQ drop at 2-3 bits.
    """
    check_positive_int(epochs, "epochs")
    dims = (task.x_train.shape[1], 64, 48, task.classes)
    float_model = MLPClassifier(dims, seed=seed + 1)
    float_model.fit(task.x_train, task.y_train, epochs=epochs, seed=seed + 2)
    float_acc = float_model.accuracy(task.x_test, task.y_test)

    rows: list[dict[str, float]] = []
    for bits in bits_list:
        ptq = float_model.with_transformed_weights(
            lambda w, b=bits: bcq_quantize(w, b, method=method).dequantize()
        )
        ptq_acc = ptq.accuracy(task.x_test, task.y_test)
        _, qat_acc = train_qat(
            task,
            bits=bits,
            dims=dims,
            epochs=epochs,
            method=method,
            seed=seed,
            base_model=float_model,
        )
        rows.append(
            {
                "bits": float(bits),
                "float_accuracy": float_acc,
                "ptq_accuracy": ptq_acc,
                "qat_accuracy": qat_acc,
            }
        )
    return rows
