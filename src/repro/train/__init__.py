"""Tiny numpy training substrate for the Table I accuracy proxy.

The paper's Table I reports BLEU of a WMT'13 En-De Transformer after
weight quantization -- not reproducible offline.  The substitution
(DESIGN.md Section 2) trains a small teacher-student classifier in pure
numpy and measures test accuracy after post-training quantization of the
student's weights at 1-8 bits under BCQ (greedy / alternating) and
uniform schemes.  The *shape* to reproduce: >=3-bit BCQ is nearly
lossless, 2-bit drops a little, 1-bit collapses, and uniform needs more
bits than BCQ for the same quality.

- :mod:`repro.train.data` -- the synthetic classification task;
- :mod:`repro.train.mlp` -- an MLP classifier with SGD training;
- :mod:`repro.train.experiment` -- the accuracy-vs-bits sweep and the
  weight-SQNR sweep on Transformer-shaped matrices.
"""

from repro.train.data import make_teacher_task
from repro.train.mlp import MLPClassifier
from repro.train.experiment import (
    QuantQualityRow,
    accuracy_vs_bits,
    weight_sqnr_sweep,
)

__all__ = [
    "make_teacher_task",
    "MLPClassifier",
    "QuantQualityRow",
    "accuracy_vs_bits",
    "weight_sqnr_sweep",
]
