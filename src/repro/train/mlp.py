"""A small ReLU MLP classifier trained with minibatch SGD, in numpy.

Deliberately minimal: enough capacity to fit the teacher task well
(baseline test accuracy well above chance) so that quantization-induced
accuracy *drops* are measurable, which is all the Table I proxy needs.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro._util import check_positive_int
from repro.nn.functional import relu, softmax

__all__ = ["MLPClassifier"]


class MLPClassifier:
    """Fully-connected ReLU network ending in a softmax classifier.

    Parameters
    ----------
    dims:
        Layer widths ``(input, hidden..., classes)``; at least two
        entries.
    seed:
        RNG seed for the Xavier-scaled initial weights.
    """

    def __init__(self, dims: Sequence[int], *, seed: int = 0):
        if len(dims) < 2:
            raise ValueError("dims needs at least (input, classes)")
        for d in dims:
            check_positive_int(int(d), "dims entry")
        self.dims = tuple(int(d) for d in dims)
        rng = np.random.default_rng(seed)
        self.weights: list[np.ndarray] = [
            rng.standard_normal((self.dims[i + 1], self.dims[i]))
            / np.sqrt(self.dims[i])
            for i in range(len(self.dims) - 1)
        ]
        self.biases: list[np.ndarray] = [
            np.zeros(self.dims[i + 1]) for i in range(len(self.dims) - 1)
        ]

    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Logits for inputs ``(batch, input_dim)``."""
        h = np.asarray(x, dtype=np.float64)
        for i, (w, b) in enumerate(zip(self.weights, self.biases)):
            h = h @ w.T + b
            if i < len(self.weights) - 1:
                h = relu(h)
        return h

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Class indices for inputs ``(batch, input_dim)``."""
        return self.forward(x).argmax(axis=1)

    def accuracy(self, x: np.ndarray, y: np.ndarray) -> float:
        """Fraction of correct predictions."""
        y = np.asarray(y)
        return float((self.predict(x) == y).mean())

    # ------------------------------------------------------------------
    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        *,
        epochs: int = 30,
        batch_size: int = 64,
        lr: float = 0.1,
        seed: int = 0,
    ) -> list[float]:
        """Minibatch SGD on softmax cross-entropy; returns per-epoch loss."""
        check_positive_int(epochs, "epochs")
        check_positive_int(batch_size, "batch_size")
        xm = np.asarray(x, dtype=np.float64)
        ym = np.asarray(y)
        if xm.ndim != 2 or xm.shape[1] != self.dims[0]:
            raise ValueError(
                f"x must be (batch, {self.dims[0]}), got {xm.shape}"
            )
        if ym.shape != (xm.shape[0],):
            raise ValueError("y must be a label vector matching x rows")
        rng = np.random.default_rng(seed)
        n = xm.shape[0]
        losses = []
        for _epoch in range(epochs):
            order = rng.permutation(n)
            epoch_loss = 0.0
            for start in range(0, n, batch_size):
                idx = order[start : start + batch_size]
                epoch_loss += self._sgd_step(xm[idx], ym[idx], lr) * len(idx)
            losses.append(epoch_loss / n)
        return losses

    def _sgd_step(self, xb: np.ndarray, yb: np.ndarray, lr: float) -> float:
        # Forward pass, caching pre-activations.
        activations = [xb]
        h = xb
        for i, (w, b) in enumerate(zip(self.weights, self.biases)):
            z = h @ w.T + b
            h = relu(z) if i < len(self.weights) - 1 else z
            activations.append(h)
        probs = softmax(activations[-1], axis=1)
        batch = xb.shape[0]
        loss = float(
            -np.log(np.clip(probs[np.arange(batch), yb], 1e-12, None)).mean()
        )
        # Backward pass.
        grad = probs.copy()
        grad[np.arange(batch), yb] -= 1.0
        grad /= batch
        for i in range(len(self.weights) - 1, -1, -1):
            a_prev = activations[i]
            gw = grad.T @ a_prev
            gb = grad.sum(axis=0)
            if i > 0:
                grad = (grad @ self.weights[i]) * (activations[i] > 0)
            self.weights[i] -= lr * gw
            self.biases[i] -= lr * gb
        return loss

    # ------------------------------------------------------------------
    def with_transformed_weights(
        self, transform: Callable[[np.ndarray], np.ndarray]
    ) -> "MLPClassifier":
        """Copy of this model with *transform* applied to every weight.

        The post-training-quantization hook: pass a function mapping a
        dense weight matrix to its dequantized approximation.  Biases
        are copied unchanged (the paper quantizes weights only).
        """
        clone = MLPClassifier(self.dims)
        clone.weights = [
            np.asarray(transform(w), dtype=np.float64).copy()
            for w in self.weights
        ]
        for orig, new in zip(self.weights, clone.weights):
            if new.shape != orig.shape:
                raise ValueError(
                    f"transform changed a weight shape {orig.shape} -> {new.shape}"
                )
        clone.biases = [b.copy() for b in self.biases]
        return clone
