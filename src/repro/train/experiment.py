"""Table I proxy experiments: quantization quality versus bit width.

Two complementary measurements (both substitutions for the paper's
WMT'13 BLEU, documented in DESIGN.md Section 2):

:func:`weight_sqnr_sweep`
    Reconstruction SQNR of BCQ (greedy / alternating) and uniform
    quantization on Gaussian Transformer-shaped weight matrices -- the
    direct signal-quality analogue.
:func:`accuracy_vs_bits`
    Test accuracy of a trained student classifier after post-training
    weight quantization -- the task-quality analogue.  Expected shape
    (matching Table I): >=3-bit BCQ nearly lossless, 2-bit small drop,
    1-bit severe, uniform needing more bits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import check_positive_int
from repro.quant.bcq import bcq_quantize
from repro.quant.error import sqnr_db
from repro.quant.uniform import uniform_quantize
from repro.train.data import make_teacher_task
from repro.train.mlp import MLPClassifier

__all__ = ["QuantQualityRow", "accuracy_vs_bits", "weight_sqnr_sweep"]

SCHEMES = ("bcq-greedy", "bcq-alternating", "uniform")


@dataclass(frozen=True)
class QuantQualityRow:
    """One row of the Table I proxy."""

    scheme: str
    bits: int
    accuracy: float
    baseline_accuracy: float

    @property
    def drop(self) -> float:
        """Accuracy lost relative to the float baseline (positive = worse)."""
        return self.baseline_accuracy - self.accuracy


def _dequant_fn(scheme: str, bits: int):
    if scheme == "bcq-greedy":
        return lambda w: bcq_quantize(w, bits, method="greedy").dequantize()
    if scheme == "bcq-alternating":
        return lambda w: bcq_quantize(w, bits, method="alternating").dequantize()
    if scheme == "uniform":
        if bits < 2:
            # A 1-bit uniform grid has a single magnitude level; model it
            # through the symmetric grid with bits=2's degenerate subset
            # by clamping to sign * scale.
            def one_bit(w: np.ndarray) -> np.ndarray:
                scale = np.abs(w).max()
                return np.where(w >= 0, scale, -scale)

            return one_bit
        return lambda w: uniform_quantize(w, bits, per_row=True).dequantize()
    raise ValueError(f"unknown scheme {scheme!r}; expected one of {SCHEMES}")


def accuracy_vs_bits(
    *,
    bits_list: tuple[int, ...] = (1, 2, 3, 4, 6, 8),
    schemes: tuple[str, ...] = SCHEMES,
    epochs: int = 25,
    seed: int = 0,
) -> tuple[float, list[QuantQualityRow]]:
    """Train the student once, then sweep PTQ schemes and bit widths.

    Returns ``(baseline_accuracy, rows)``.  Deterministic for a given
    seed.
    """
    check_positive_int(epochs, "epochs")
    task = make_teacher_task(seed=seed)
    model = MLPClassifier(
        (task.x_train.shape[1], 64, 48, task.classes), seed=seed + 1
    )
    model.fit(task.x_train, task.y_train, epochs=epochs, seed=seed + 2)
    baseline = model.accuracy(task.x_test, task.y_test)
    rows: list[QuantQualityRow] = []
    for scheme in schemes:
        for bits in bits_list:
            quantized = model.with_transformed_weights(_dequant_fn(scheme, bits))
            acc = quantized.accuracy(task.x_test, task.y_test)
            rows.append(
                QuantQualityRow(
                    scheme=scheme,
                    bits=bits,
                    accuracy=acc,
                    baseline_accuracy=baseline,
                )
            )
    return baseline, rows


def weight_sqnr_sweep(
    *,
    shapes: tuple[tuple[int, int], ...] = ((512, 512), (2048, 512)),
    bits_list: tuple[int, ...] = (1, 2, 3, 4, 6, 8),
    schemes: tuple[str, ...] = SCHEMES,
    seed: int = 0,
) -> list[dict[str, object]]:
    """Reconstruction SQNR (dB) per scheme/bits on Gaussian weights.

    Gaussian matrices model trained Transformer weights (which are
    near-Gaussian per row); shapes default to the paper's base-model
    attention and feed-forward blocks.
    """
    rng = np.random.default_rng(seed)
    rows: list[dict[str, object]] = []
    for m, n in shapes:
        check_positive_int(m, "shape m")
        check_positive_int(n, "shape n")
        w = rng.standard_normal((m, n)) * 0.05
        for scheme in schemes:
            for bits in bits_list:
                approx = _dequant_fn(scheme, bits)(w)
                rows.append(
                    {
                        "shape": f"{m}x{n}",
                        "scheme": scheme,
                        "bits": bits,
                        "sqnr_db": sqnr_db(w, approx),
                    }
                )
    return rows
