"""Deterministic seeded fault injection.

The serving and cluster layers expose named *fault points* -- places
where production failures actually happen (a worker about to pick up a
job, a model about to be installed in the store, a decode tick about to
run).  When the harness is off the call site costs one module-attribute
read (the same discipline as :mod:`repro.obs.runtime`); when a
:class:`FaultPlan` is armed, each point consults its rules and
deterministically injects the planned behavior:

``fail``
    raise a planned exception (seeded: the Nth hit fails, not a coin
    flip per call),
``delay``
    sleep a planned duration (straggler / slow-start injection),
``hang``
    block until :func:`resume` (or a deadline) -- this is how heartbeat
    escalation and hot-swap races are tested,
``kill``
    hard-exit the current process via ``os._exit`` (worker-side only;
    simulates a segfault-class death, skipping ``atexit``/``finally``),
``pause``/``resume``
    cooperative breakpoints for race tests: a test thread parks a
    serving thread at a named point, interleaves the racing operation,
    then releases it.

Plans are plain data (JSON-encodable), so the front process can arm a
plan inside a worker subprocess by passing ``REPRO_FAULT_PLAN`` in its
environment -- see :func:`FaultPlan.to_env` / :func:`install_from_env`.

Determinism: rules trigger on *hit counts* (``after``, ``every``,
``times``) under a per-point counter, and any jitter comes from a
``random.Random(seed)`` owned by the plan.  The same plan against the
same request sequence injects the same faults.
"""

from __future__ import annotations

import json
import os
import random
import threading
import time
from dataclasses import dataclass, field

__all__ = [
    "ACTIVE",
    "FaultError",
    "FaultPlan",
    "FaultRule",
    "PoisonError",
    "clear",
    "fire",
    "install",
    "install_from_env",
    "plan",
    "resume",
]

ENV_VAR = "REPRO_FAULT_PLAN"

#: Fast flag read by instrumented call sites (`if _faults.ACTIVE:`).
ACTIVE = False

_lock = threading.Lock()
_plan: "FaultPlan | None" = None


class FaultError(RuntimeError):
    """An injected failure (the planned exception for ``fail`` rules)."""


class PoisonError(ValueError):
    """An injected malformed-input failure.

    Subclasses ``ValueError`` so the serving error mapping treats a
    poison input exactly like a real client error (HTTP 400), which is
    the recovery behavior under test.
    """


@dataclass
class FaultRule:
    """One behavior at one point.

    ``after`` skips the first N hits, then the rule is eligible;
    ``every`` triggers on every Kth eligible hit (1 = all); ``times``
    caps total triggers (None = unlimited).
    """

    point: str
    action: str  # "fail" | "delay" | "hang" | "kill" | "pause"
    after: int = 0
    every: int = 1
    times: int | None = 1
    delay_s: float = 0.0
    jitter_s: float = 0.0
    error: str = ""
    exc: type[Exception] | None = None  # in-process plans only
    fired: int = 0  # mutable trigger count

    _ACTIONS = ("fail", "delay", "hang", "kill", "pause")

    def __post_init__(self) -> None:
        if self.action not in self._ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r} "
                f"(expected one of {self._ACTIONS})"
            )
        if self.every < 1:
            raise ValueError("every must be >= 1")

    def should_fire(self, hit: int) -> bool:
        """Deterministic trigger decision for the *hit*-th visit
        (1-based) to this rule's point."""
        if self.times is not None and self.fired >= self.times:
            return False
        eligible = hit - self.after
        return eligible >= 1 and (eligible - 1) % self.every == 0

    def to_dict(self) -> dict:
        return {
            "point": self.point,
            "action": self.action,
            "after": self.after,
            "every": self.every,
            "times": self.times,
            "delay_s": self.delay_s,
            "jitter_s": self.jitter_s,
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultRule":
        return cls(**{k: data[k] for k in (
            "point", "action", "after", "every", "times",
            "delay_s", "jitter_s", "error",
        ) if k in data})


class FaultPlan:
    """A seeded set of :class:`FaultRule`\\ s plus the pause/resume
    machinery.  Install with :func:`install` (or use as a context
    manager); points not named by any rule stay free."""

    def __init__(self, rules: list[FaultRule] | None = None, *, seed: int = 0):
        self.seed = int(seed)
        self.rules: list[FaultRule] = list(rules or [])
        self._rng = random.Random(self.seed)
        self._hits: dict[str, int] = {}
        self._paused: dict[str, threading.Event] = {}
        self._parked: dict[str, threading.Event] = {}

    # -- authoring ---------------------------------------------------

    def add(self, rule: FaultRule) -> "FaultPlan":
        self.rules.append(rule)
        return self

    def fail(self, point: str, *, exc: type[Exception] | None = None,
             message: str = "", **kw) -> "FaultPlan":
        return self.add(FaultRule(point, "fail", exc=exc, error=message, **kw))

    def delay(self, point: str, delay_s: float, **kw) -> "FaultPlan":
        return self.add(FaultRule(point, "delay", delay_s=delay_s, **kw))

    def hang(self, point: str, **kw) -> "FaultPlan":
        return self.add(FaultRule(point, "hang", **kw))

    def kill(self, point: str, **kw) -> "FaultPlan":
        return self.add(FaultRule(point, "kill", **kw))

    def pause(self, point: str, **kw) -> "FaultPlan":
        return self.add(FaultRule(point, "pause", **kw))

    # -- wire format -------------------------------------------------

    def to_json(self) -> str:
        for rule in self.rules:
            if rule.exc is not None:
                raise ValueError(
                    f"rule at {rule.point!r} carries a live exception "
                    "type; cross-process plans must use `error=` text"
                )
        return json.dumps(
            {"seed": self.seed, "rules": [r.to_dict() for r in self.rules]}
        )

    @classmethod
    def from_json(cls, blob: str) -> "FaultPlan":
        data = json.loads(blob)
        return cls(
            [FaultRule.from_dict(r) for r in data.get("rules", ())],
            seed=data.get("seed", 0),
        )

    def to_env(self, env: dict[str, str] | None = None) -> dict[str, str]:
        """Encode into *env* (default: a copy of ``os.environ``) so a
        spawned worker arms this plan at startup."""
        out = dict(os.environ if env is None else env)
        out[ENV_VAR] = self.to_json()
        return out

    # -- runtime -----------------------------------------------------

    def hits(self, point: str) -> int:
        with _lock:
            return self._hits.get(point, 0)

    def fire(self, point: str) -> None:
        """Visit *point*: apply every triggered rule.  Called through
        the module-level :func:`fire` behind the ``ACTIVE`` flag."""
        with _lock:
            hit = self._hits.get(point, 0) + 1
            self._hits[point] = hit
            todo = []
            for rule in self.rules:
                if rule.point == point and rule.should_fire(hit):
                    rule.fired += 1
                    todo.append(rule)
        for rule in todo:
            self._apply(rule, point)

    def _apply(self, rule: FaultRule, point: str) -> None:
        if rule.action == "delay":
            pause = rule.delay_s
            if rule.jitter_s:
                with _lock:
                    pause += self._rng.uniform(0.0, rule.jitter_s)
            time.sleep(pause)
        elif rule.action == "fail":
            exc_type = rule.exc or FaultError
            raise exc_type(
                rule.error or f"injected fault at {point!r}"
            )
        elif rule.action == "kill":
            os._exit(86)  # segfault-class death: no atexit, no finally
        elif rule.action in ("hang", "pause"):
            with _lock:
                gate = self._paused.get(point)
                if gate is None:
                    gate = self._paused[point] = threading.Event()
                parked = self._parked.get(point)
                if parked is None:
                    parked = self._parked[point] = threading.Event()
            parked.set()  # tell the test we reached the point
            # A hang is unbounded on the worker side by design -- the
            # supervisor's heartbeat deadline is what ends it.
            gate.wait()

    def wait_parked(self, point: str, timeout: float = 5.0) -> bool:
        """Block until some thread is parked at *point* (pause/hang)."""
        with _lock:
            parked = self._parked.get(point)
            if parked is None:
                parked = self._parked[point] = threading.Event()
        return parked.wait(timeout)

    def resume(self, point: str | None = None) -> None:
        """Release threads parked at *point* (or at every point)."""
        with _lock:
            gates = (
                list(self._paused.values())
                if point is None
                else [g for p, g in self._paused.items() if p == point]
            )
        for gate in gates:
            gate.set()

    # -- context manager --------------------------------------------

    def __enter__(self) -> "FaultPlan":
        install(self)
        return self

    def __exit__(self, *exc) -> None:
        self.resume()
        clear()


def plan(seed: int = 0) -> FaultPlan:
    """A fresh empty plan (fluent authoring entry point)."""
    return FaultPlan(seed=seed)


def install(fault_plan: FaultPlan) -> None:
    """Arm *fault_plan* process-wide."""
    global _plan, ACTIVE
    with _lock:
        _plan = fault_plan
    ACTIVE = True


def clear() -> None:
    """Disarm fault injection (parked threads are released first)."""
    global _plan, ACTIVE
    with _lock:
        current = _plan
        _plan = None
    ACTIVE = False
    if current is not None:
        current.resume()


def current() -> FaultPlan | None:
    return _plan


def fire(point: str) -> None:
    """Visit *point* on the armed plan.  Call sites guard with
    ``if _faults.ACTIVE:`` so the disabled path costs one attribute
    read."""
    p = _plan
    if p is not None:
        p.fire(point)


def resume(point: str | None = None) -> None:
    """Release threads parked by the armed plan."""
    p = _plan
    if p is not None:
        p.resume(point)


def install_from_env(environ: dict[str, str] | None = None) -> FaultPlan | None:
    """Arm the plan encoded in ``REPRO_FAULT_PLAN``, if present.

    Worker processes call this once at startup so a front-process test
    can schedule faults inside them deterministically.
    """
    env = os.environ if environ is None else environ
    blob = env.get(ENV_VAR)
    if not blob:
        return None
    fault_plan = FaultPlan.from_json(blob)
    install(fault_plan)
    return fault_plan
