"""Seeded chaos storms against a live cluster server.

:func:`run_chaos` builds a quantized model, serves it from a
supervised process pool (:class:`repro.serve.cluster.ClusterPool` via
:class:`repro.serve.Server` in cluster mode), arms a deterministic
:class:`~repro.resilience.faults.FaultPlan` storm -- worker kills,
slow starts, stragglers, hung loops, poisoned inputs -- and hammers it
with concurrent clients.

The pass criterion is the robustness contract, not survival: every
request must end in one of the *clean* outcomes

``ok``           correct (bit-identical) result,
``poisoned``     the injected 400-class input error, attributed,
``shed``         429-class backpressure / SLO shed,
``unroutable``   503 while the crash-loop breaker holds,

and nothing else.  ``mismatched`` (wrong bytes) or ``unexpected``
(unexplained 5xx) fail the run.  The same ``--seed`` replays the same
storm against the same request sequence.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field

import numpy as np

from repro.resilience import faults

__all__ = ["ChaosReport", "build_storm", "run_chaos"]


@dataclass
class ChaosReport:
    """Outcome of one chaos run."""

    seed: int
    requests: int
    outcomes: dict[str, int] = field(default_factory=dict)
    cluster: dict = field(default_factory=dict)
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        bad = self.outcomes.get("mismatched", 0)
        bad += self.outcomes.get("unexpected", 0)
        return bad == 0

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "requests": self.requests,
            "outcomes": dict(self.outcomes),
            "cluster": dict(self.cluster),
            "elapsed_s": round(self.elapsed_s, 3),
            "ok": self.ok,
        }


def build_storm(
    seed: int,
    *,
    kill_every: int = 25,
    slow_start_s: float = 0.2,
    straggle_every: int = 17,
    straggle_s: float = 0.15,
    hang_after: int | None = None,
) -> faults.FaultPlan:
    """The worker-side fault plan (armed in every worker process).

    Counters are per process: each fresh worker startles slow, then
    dies on its ``kill_every``-th job, straggles every
    ``straggle_every``-th -- so the storm keeps producing deaths,
    respawns and redeliveries for the whole run.
    """
    storm = faults.plan(seed=seed)
    if slow_start_s > 0:
        storm.delay("worker.start", slow_start_s, jitter_s=slow_start_s)
    if straggle_every > 0:
        storm.delay(
            "worker.job",
            straggle_s,
            after=3,
            every=straggle_every,
            times=None,
            jitter_s=straggle_s / 2,
        )
    if kill_every > 0:
        storm.kill("worker.job", after=kill_every - 1, times=1)
    if hang_after is not None:
        storm.hang("worker.loop", after=hang_after)
    return storm


def run_chaos(
    *,
    seed: int = 0,
    workers: int = 2,
    clients: int = 4,
    requests: int = 120,
    kill_every: int = 25,
    slow_start_s: float = 0.2,
    straggle_every: int = 17,
    poison_every: int = 19,
    timeout_s: float = 120.0,
    verbose: bool = False,
) -> ChaosReport:
    """One deterministic chaos run; returns its :class:`ChaosReport`."""
    import threading

    from repro.api import QuantConfig, quantize
    from repro.nn import build_encoder
    from repro.serve import ServeConfig, Server
    from repro.serve.batcher import QueueFullError
    from repro.serve.cluster import ClusterConfig, ModelUnroutableError

    def say(msg: str) -> None:
        if verbose:
            print(msg, flush=True)

    compiled = quantize(
        build_encoder("transformer-base", scale=16, layers=1, seed=seed),
        QuantConfig(bits=2, mu=4),
    ).compile(batch_hint=1)

    storm = build_storm(
        seed,
        kill_every=kill_every,
        slow_start_s=slow_start_s,
        straggle_every=straggle_every,
    )
    # Workers arm the storm from their environment at startup.
    os.environ[faults.ENV_VAR] = storm.to_json()
    # The front process injects poison client-side: every Nth submit
    # raises the 400-class input error the mapping must attribute.
    front = faults.plan(seed=seed)
    if poison_every > 0:
        front.fail(
            "serve.submit",
            exc=faults.PoisonError,
            message="chaos: poisoned input",
            after=poison_every - 1,
            every=poison_every,
            times=None,
        )
        faults.install(front)

    server = Server(
        config=ServeConfig(
            workers=workers,
            max_batch=8,
            max_latency_ms=1.0,
            max_queue=64,
            cluster=True,
            cluster_config=ClusterConfig(
                heartbeat_interval_s=0.1,
                heartbeat_timeout_s=2.0,
                start_timeout_s=180.0,
                respawn_backoff_s=0.05,
                max_redelivery=8,
                redelivery_wait_s=timeout_s,
                seed=seed,
            ),
        )
    )
    server.add_model("chaos", compiled)

    rng = np.random.default_rng(seed)
    inputs = [rng.standard_normal((4, 32)) for _ in range(requests)]
    expected = [compiled(x[None])[0] for x in inputs]

    outcomes: dict[str, int] = {}
    lock = threading.Lock()

    def record(kind: str) -> None:
        with lock:
            outcomes[kind] = outcomes.get(kind, 0) + 1

    cursor = iter(range(requests))

    def client() -> None:
        while True:
            with lock:
                i = next(cursor, None)
            if i is None:
                return
            try:
                y = server.predict("chaos", inputs[i], timeout=timeout_s)
            except faults.PoisonError:
                record("poisoned")
            except ModelUnroutableError:
                record("unroutable")
            except QueueFullError:
                record("shed")
            except BaseException as exc:  # noqa: BLE001 -- tallied
                say(f"unexpected: {type(exc).__name__}: {exc}")
                record("unexpected")
            else:
                if np.array_equal(y, expected[i]):
                    record("ok")
                else:
                    record("mismatched")

    started = time.monotonic()
    try:
        with server:
            threads = [
                threading.Thread(target=client, daemon=True)
                for _ in range(clients)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout_s * 2)
            stats = server.metrics()["models"]["chaos"]["cluster"]
    finally:
        faults.clear()
        os.environ.pop(faults.ENV_VAR, None)

    report = ChaosReport(
        seed=seed,
        requests=requests,
        outcomes=outcomes,
        cluster={
            k: stats[k]
            for k in (
                "spawns", "deaths", "respawns", "kills",
                "quarantines", "releases", "redelivered",
            )
        },
        elapsed_s=time.monotonic() - started,
    )
    say(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    return report
