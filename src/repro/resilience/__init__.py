"""Fault injection and chaos testing for the serving tier.

:mod:`repro.resilience.faults` is the deterministic seeded
fault-injection harness (named fault points, kill/hang/delay/fail/pause
rules, pytest-friendly pause/resume).  :mod:`repro.resilience.chaos`
drives a live cluster through seeded fault storms and asserts the
recovery contract; ``python -m repro.resilience chaos`` runs it from
the command line.
"""

from repro.resilience.faults import (
    FaultError,
    FaultPlan,
    FaultRule,
    PoisonError,
    clear,
    fire,
    install,
    install_from_env,
    plan,
    resume,
)

__all__ = [
    "FaultError",
    "FaultPlan",
    "FaultRule",
    "PoisonError",
    "clear",
    "fire",
    "install",
    "install_from_env",
    "plan",
    "resume",
]
