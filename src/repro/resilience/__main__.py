"""Chaos-test the cluster serving tier from the command line.

::

    python -m repro.resilience chaos --seed 0 --workers 2 --requests 120

runs one deterministic fault storm (worker kills, slow starts,
stragglers, poisoned inputs) against a live process-pool server and
exits 0 only if every request ended in a clean outcome (correct
result, attributed 400, shed, or unroutable-while-quarantined) -- see
:mod:`repro.resilience.chaos`.
"""

from __future__ import annotations

import argparse
import json
import sys


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.resilience",
        description="deterministic chaos testing for the serving tier",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    chaos = sub.add_parser(
        "chaos", help="run one seeded fault storm against a live cluster"
    )
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--workers", type=int, default=2)
    chaos.add_argument("--clients", type=int, default=4)
    chaos.add_argument("--requests", type=int, default=120)
    chaos.add_argument(
        "--kill-every",
        type=int,
        default=25,
        metavar="N",
        help="each worker dies on its Nth job (0 disables)",
    )
    chaos.add_argument(
        "--slow-start-s",
        type=float,
        default=0.2,
        help="injected worker startup delay (0 disables)",
    )
    chaos.add_argument(
        "--straggle-every",
        type=int,
        default=17,
        metavar="N",
        help="delay every Nth job per worker (0 disables)",
    )
    chaos.add_argument(
        "--poison-every",
        type=int,
        default=19,
        metavar="N",
        help="poison every Nth submitted request (0 disables)",
    )
    chaos.add_argument("--timeout-s", type=float, default=120.0)
    chaos.add_argument("-q", "--quiet", action="store_true")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "chaos":
        from repro.resilience.chaos import run_chaos

        report = run_chaos(
            seed=args.seed,
            workers=args.workers,
            clients=args.clients,
            requests=args.requests,
            kill_every=args.kill_every,
            slow_start_s=args.slow_start_s,
            straggle_every=args.straggle_every,
            poison_every=args.poison_every,
            timeout_s=args.timeout_s,
            verbose=not args.quiet,
        )
        if args.quiet:
            print(json.dumps(report.to_dict(), sort_keys=True), flush=True)
        return 0 if report.ok else 1
    return 2  # pragma: no cover - argparse enforces the subcommand


if __name__ == "__main__":
    sys.exit(main())
