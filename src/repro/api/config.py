"""Declarative whole-model quantization configuration.

The paper quantizes *networks*, not layers: one bit-width policy covers
a Transformer encoder stack, with exceptions where accuracy demands
them (e.g. more bits on the feed-forward blocks).  :class:`QuantConfig`
expresses exactly that -- global defaults for every
:class:`~repro.engine.base.QuantSpec` field plus glob-keyed per-layer
overrides -- and replaces the per-layer constructor kwarg soup as the
single input to :func:`repro.api.quantize`.

Pattern semantics
-----------------
Override keys are :mod:`fnmatch`-style globs matched against a layer's
dotted path (``"L0.attn.q"``, ``"L2.ffn.ff1"``, ...) *or any dotted
suffix of it*, so ``"ffn.*"`` selects every feed-forward projection of
every layer without knowing the stack depth.  Overrides apply in
declaration order; when several patterns match one layer, later
declarations win field-by-field.

>>> cfg = QuantConfig(bits=3, overrides={"ffn.*": {"bits": 4}})
>>> cfg.spec_for("L0.attn.q").bits
3
>>> cfg.spec_for("L0.ffn.ff1").bits
4
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields, replace
from fnmatch import fnmatchcase
from typing import Any, Mapping

from repro.engine import QuantSpec, validate_spec

__all__ = ["QuantConfig", "SPEC_FIELDS"]

SPEC_FIELDS: tuple[str, ...] = tuple(
    f.name for f in fields(QuantSpec)
)
"""The per-layer knobs a config (and its overrides) can set."""


def _check_override_table(
    overrides: Mapping[str, Mapping[str, Any]]
) -> dict[str, dict[str, Any]]:
    if not isinstance(overrides, Mapping):
        raise TypeError(
            f"overrides must be a mapping of glob -> field dict, got "
            f"{type(overrides).__name__}"
        )
    out: dict[str, dict[str, Any]] = {}
    for pattern, table in overrides.items():
        if not isinstance(pattern, str) or not pattern:
            raise ValueError(
                f"override pattern must be a non-empty string, got "
                f"{pattern!r}"
            )
        if not isinstance(table, Mapping):
            raise TypeError(
                f"override for {pattern!r} must be a mapping, got "
                f"{type(table).__name__}"
            )
        unknown = sorted(set(table) - set(SPEC_FIELDS))
        if unknown:
            raise ValueError(
                f"override {pattern!r} sets unknown field(s) {unknown}; "
                f"expected a subset of {sorted(SPEC_FIELDS)}"
            )
        out[pattern] = dict(table)
    return out


def _pattern_matches(pattern: str, name: str) -> bool:
    """Glob match against the full dotted path or any dotted suffix."""
    if fnmatchcase(name, pattern):
        return True
    parts = name.split(".")
    return any(
        fnmatchcase(".".join(parts[i:]), pattern)
        for i in range(1, len(parts))
    )


@dataclass
class QuantConfig:
    """One declarative config for quantizing a whole model.

    The leading fields mirror :class:`~repro.engine.base.QuantSpec`
    and set the model-wide defaults; ``overrides`` maps glob patterns to
    partial field dicts applied per layer name (see the module docstring
    for the matching rules).  Mixed bit-width models are one override
    away:

    >>> QuantConfig(bits=3, overrides={"ffn.*": {"bits": 4}})  # doctest: +ELLIPSIS
    QuantConfig(bits=3, ...)

    Every layer spec the config can produce is validated eagerly at
    construction, so a typo'd backend or machine name fails here rather
    than mid-quantization.
    """

    bits: int = 3
    mu: int = 8
    method: str = "greedy"
    backend: str = "auto"
    a_bits: int = 1
    machine: str = "pc"
    batch_hint: int | None = None
    planner: str = "model"
    fuse: str | None = None
    overrides: dict[str, dict[str, Any]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.overrides = _check_override_table(self.overrides)
        validate_spec(self.base_spec())
        for pattern, table in self.overrides.items():
            try:
                validate_spec(replace(self.base_spec(), **table))
            except (TypeError, ValueError) as exc:
                raise ValueError(
                    f"override {pattern!r} produces an invalid spec: {exc}"
                ) from exc

    # ------------------------------------------------------------------
    # spec resolution
    # ------------------------------------------------------------------
    def base_spec(self) -> QuantSpec:
        """The default :class:`QuantSpec` (no overrides applied)."""
        return QuantSpec(
            bits=self.bits,
            mu=self.mu,
            method=self.method,
            backend=self.backend,
            a_bits=self.a_bits,
            machine=self.machine,
            batch_hint=self.batch_hint,
            planner=self.planner,
            fuse=self.fuse,
        )

    def matching_patterns(self, name: str) -> tuple[str, ...]:
        """The override patterns selecting layer *name*, in order."""
        return tuple(
            p for p in self.overrides if _pattern_matches(p, name)
        )

    def spec_for(self, name: str) -> QuantSpec:
        """Resolve the :class:`QuantSpec` for the layer at dotted path
        *name*, applying every matching override in declaration order."""
        spec = self.base_spec()
        merged: dict[str, Any] = {}
        for pattern in self.matching_patterns(name):
            merged.update(self.overrides[pattern])
        return replace(spec, **merged) if merged else spec

    # ------------------------------------------------------------------
    # construction / conversion
    # ------------------------------------------------------------------
    @classmethod
    def from_spec(
        cls,
        spec: QuantSpec,
        *,
        overrides: Mapping[str, Mapping[str, Any]] | None = None,
    ) -> "QuantConfig":
        """Lift a single layer spec into a model-wide config."""
        if not isinstance(spec, QuantSpec):
            raise TypeError(
                f"spec must be a QuantSpec, got {type(spec).__name__}"
            )
        kw = {name: getattr(spec, name) for name in SPEC_FIELDS}
        return cls(overrides=dict(overrides or {}), **kw)

    def replace(self, **changes: Any) -> "QuantConfig":
        """A copy with *changes* applied (dataclasses.replace semantics)."""
        return replace(self, **changes)

    def to_dict(self) -> dict[str, Any]:
        """A JSON-able dict (the form embedded in v3 model artifacts)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "QuantConfig":
        """Inverse of :meth:`to_dict`; rejects unknown keys."""
        if not isinstance(data, Mapping):
            raise TypeError(
                f"config data must be a mapping, got {type(data).__name__}"
            )
        known = set(SPEC_FIELDS) | {"overrides"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown QuantConfig field(s) {unknown}; expected a "
                f"subset of {sorted(known)}"
            )
        return cls(**data)
