"""Model-level quantize -> compile -> serve.

The paper's deployment story is whole-network: quantize every weight
GEMM of a Transformer or LSTM offline, compile the engines, ship the
compiled state, serve.  This module provides that pipeline over any
model built from the :mod:`repro.nn` layers (and plain layer lists, and
the numpy :class:`~repro.train.mlp.MLPClassifier`):

:func:`quantize`
    Walk the model, replace every float :class:`~repro.nn.linear.Linear`
    with a :class:`~repro.nn.linear.QuantLinear` under the per-layer
    spec a :class:`~repro.api.QuantConfig` resolves for its dotted path
    -- mixed bit-widths are one glob override away.
:class:`QuantModel`
    The quantized-but-unplanned model: named layers, shapes, callable.
:meth:`QuantModel.compile`
    One planning pass over all layers through
    :func:`repro.api.planner.plan_layers` (shared plan cache), pinning
    each layer to its planned backend.
:class:`CompiledModel`
    The servable result: callable inference, ``warmup()``,
    ``cost_report()``, ``save()`` to the v3 whole-model artifact.

Layer naming: paths are dotted attribute chains with the repo's
conventional segments -- encoder stacks enumerate as ``L0``, ``L1``,
..., attention projections as ``attn.q/k/v/o``, feed-forward blocks as
``ffn.ff1`` / ``ffn.ff2`` -- matching
:func:`repro.nn.model_zoo.model_gemm_shapes`, so one override glob
speaks to both the planner sweeps and real models.
"""

from __future__ import annotations

import copy
import threading
from typing import Any, Callable, Iterable, Mapping

import numpy as np

from repro._util import check_positive_int
from repro.api.config import QuantConfig
from repro.api.planner import (
    LayerPlan,
    ModelCostReport,
    cost_report,
    layer_cost,
    plan_layers,
)
from repro.core.workspace import Workspace, use_workspace
from repro.engine import QuantSpec, batch_bucket, batch_buckets
from repro.obs import runtime as _obs
from repro.nn.attention import MultiHeadAttention
from repro.nn.conv import QuantConv2d
from repro.nn.functional import relu
from repro.nn.linear import Linear, QuantLinear
from repro.nn.seq2seq import Seq2SeqTransformer
from repro.nn.transformer import (
    TransformerDecoderLayer,
    TransformerEncoder,
    TransformerEncoderLayer,
)

__all__ = [
    "CompiledModel",
    "QuantMLP",
    "QuantModel",
    "apply_config",
    "named_quant_layers",
    "quantize",
]


# ----------------------------------------------------------------------
# traversal
# ----------------------------------------------------------------------
# Friendly path segments so glob overrides read like the paper's layer
# names instead of python attribute spellings.
_ATTR_ALIASES: dict[type, dict[str, str]] = {
    MultiHeadAttention: {
        "q_proj": "q",
        "k_proj": "k",
        "v_proj": "v",
        "o_proj": "o",
    },
    TransformerEncoderLayer: {"ff1": "ffn.ff1", "ff2": "ffn.ff2"},
    TransformerDecoderLayer: {"ff1": "ffn.ff1", "ff2": "ffn.ff2"},
}

# List attributes whose items enumerate as ``<prefix><i>`` (``L0``)
# rather than ``<attr>.<i>`` (``layers.0``).
_LIST_PREFIX_ALIASES: dict[type, dict[str, str]] = {
    TransformerEncoder: {"layers": "L"},
    Seq2SeqTransformer: {"encoder_layers": "enc", "decoder_layers": "dec"},
}

# Attributes walked despite a leading underscore, renamed (an empty
# string collapses the segment: QuantConv2d's inner linear *is* the
# conv layer as far as naming goes).
_PRIVATE_WALKED: dict[type, dict[str, str]] = {
    QuantConv2d: {"_linear": ""},
}

_LEAF_TYPES = (Linear, QuantLinear)

Visit = Callable[[str, Any], Any]


def _join(prefix: str, segment: str) -> str:
    if not segment:
        return prefix
    return f"{prefix}.{segment}" if prefix else segment


def _walkable(value: Any) -> bool:
    if isinstance(value, (list, tuple, dict)):
        return True
    if isinstance(value, (str, bytes, np.ndarray, np.generic, type)):
        return False
    return hasattr(value, "__dict__")


def _alias_for(cls: type, table: dict[type, dict[str, str]], attr: str):
    for klass in cls.__mro__:
        entry = table.get(klass)
        if entry and attr in entry:
            return entry[attr]
    return None


def _visit_item(item: Any, path: str, visit: Visit, seen: set[int]):
    """Visit one child: returns a replacement for leaves, else None."""
    if isinstance(item, _LEAF_TYPES):
        return visit(path, item)
    if _walkable(item):
        _walk(item, path, visit, seen)
    return None


def _walk(node: Any, prefix: str, visit: Visit, seen: set[int]) -> None:
    if id(node) in seen:
        return
    seen.add(id(node))
    if isinstance(node, (list, tuple)):
        for i, item in enumerate(node):
            new = _visit_item(item, _join(prefix, str(i)), visit, seen)
            if new is not None:
                if not isinstance(node, list):
                    raise TypeError(
                        f"cannot replace layer {prefix}.{i} inside a tuple; "
                        "use a list"
                    )
                node[i] = new
        return
    if isinstance(node, dict):
        for key, item in list(node.items()):
            new = _visit_item(item, _join(prefix, str(key)), visit, seen)
            if new is not None:
                node[key] = new
        return
    if not hasattr(node, "__dict__"):
        return
    cls = type(node)
    for attr, value in list(vars(node).items()):
        if attr.startswith("_"):
            renamed = _alias_for(cls, _PRIVATE_WALKED, attr)
            if renamed is None:
                continue
            segment = renamed
        else:
            segment = _alias_for(cls, _ATTR_ALIASES, attr)
            if segment is None:
                segment = attr
        list_prefix = _alias_for(cls, _LIST_PREFIX_ALIASES, attr)
        if list_prefix is not None and isinstance(value, list):
            for i, item in enumerate(value):
                new = _visit_item(
                    item, _join(prefix, f"{list_prefix}{i}"), visit, seen
                )
                if new is not None:
                    value[i] = new
            continue
        path = _join(prefix, segment)
        new = _visit_item(value, path, visit, seen)
        if new is not None:
            setattr(node, attr, new)


def named_quant_layers(model: Any) -> list[tuple[str, Any]]:
    """All ``(dotted_path, layer)`` linear leaves of *model*, in walk
    order.  Leaves are :class:`Linear` and :class:`QuantLinear`
    instances; :class:`QuantConv2d` contributes its inner linear under
    the conv's own path."""
    found: list[tuple[str, Any]] = []

    def visit(path: str, layer: Any):
        found.append((path, layer))
        return None

    _walk(model, "", visit, set())
    return found


# ----------------------------------------------------------------------
# the MLP adapter
# ----------------------------------------------------------------------
class QuantMLP:
    """:mod:`repro.api` view of a trained numpy MLP classifier.

    :class:`~repro.train.mlp.MLPClassifier` stores raw weight arrays;
    this adapter lifts them into layer objects (``fc.0`` ... ``fc.N``)
    so the quantize -> compile -> serve pipeline (and the v3 artifact)
    applies to the Table I training substrate unchanged.  The forward
    pass mirrors ``MLPClassifier.forward``: ReLU between layers, raw
    logits out.
    """

    def __init__(self, layers: list):
        if not layers:
            raise ValueError("QuantMLP needs at least one layer")
        self.fc = list(layers)

    @classmethod
    def from_classifier(cls, clf) -> "QuantMLP":
        """Wrap an :class:`~repro.train.mlp.MLPClassifier`'s weights."""
        return cls(
            [Linear(w, b) for w, b in zip(clf.weights, clf.biases)]
        )

    @property
    def dims(self) -> tuple[int, ...]:
        """Layer widths ``(input, hidden..., classes)``."""
        first = self.fc[0].shape
        return (first[1],) + tuple(layer.shape[0] for layer in self.fc)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        """Logits for inputs ``(batch, input_dim)``.

        Hidden activations run in place on the layer's output buffer,
        and a layer whose engine already fused the ReLU into its
        epilogue (:attr:`QuantLinear.fused_activation`) skips the step
        entirely -- same bits either way.
        """
        h = np.asarray(x)
        last = len(self.fc) - 1
        for i, layer in enumerate(self.fc):
            h = layer(h)
            if i < last and getattr(layer, "fused_activation", None) is None:
                h = relu(h, out=h)
        return h

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Class indices for inputs ``(batch, input_dim)``."""
        return self(x).argmax(axis=1)

    def accuracy(self, x: np.ndarray, y: np.ndarray) -> float:
        """Fraction of correct predictions."""
        return float((self.predict(x) == np.asarray(y)).mean())


def _adapt(model: Any) -> Any:
    """Known non-layer models -> walkable adapters."""
    from repro.train.mlp import MLPClassifier

    if isinstance(model, MLPClassifier):
        return QuantMLP.from_classifier(model)
    if isinstance(model, tuple):
        return list(model)
    return model


# ----------------------------------------------------------------------
# quantize
# ----------------------------------------------------------------------
def _coerce_config(config, kwargs: Mapping[str, Any]) -> QuantConfig:
    if kwargs:
        if config is not None:
            raise TypeError("pass either a config or bare kwargs, not both")
        return QuantConfig(**kwargs)
    if config is None:
        return QuantConfig()
    if isinstance(config, QuantConfig):
        return config
    if isinstance(config, QuantSpec):
        return QuantConfig.from_spec(config)
    raise TypeError(
        f"config must be a QuantConfig or QuantSpec, got "
        f"{type(config).__name__}"
    )


def apply_config(model: Any, config: QuantConfig) -> list[tuple[str, Any]]:
    """Quantize *model* in place under *config*; returns named layers.

    Float :class:`Linear` leaves become :class:`QuantLinear` under
    ``config.spec_for(path)``; already-quantized leaves are re-specced
    through :meth:`QuantLinear.with_spec` (sharing their solved BCQ
    state).  The builders' ``spec=QuantConfig(...)`` path lands here.
    """
    named: list[tuple[str, Any]] = []

    def visit(path: str, layer: Any):
        spec = config.spec_for(path)
        if isinstance(layer, QuantLinear):
            new = layer if layer.spec == spec else layer.with_spec(spec)
        else:
            new = QuantLinear(layer.weight, layer.bias, spec=spec)
        named.append((path, new))
        return new if new is not layer else None

    _walk(model, "", visit, set())
    if not named:
        raise ValueError(
            f"no quantizable linear layers found in "
            f"{type(model).__name__}"
        )
    return named


def quantize(model: Any, config=None, **kwargs) -> "QuantModel":
    """Quantize a whole model under one declarative config.

    *model* may be any object built from :mod:`repro.nn` layers (an
    encoder from :func:`~repro.nn.model_zoo.build_encoder`, an LSTM
    cell, a seq2seq transformer), a plain list of layers, or a trained
    :class:`~repro.train.mlp.MLPClassifier` (adapted via
    :class:`QuantMLP`).  *config* is a :class:`QuantConfig` (or a
    :class:`QuantSpec`, lifted); bare kwargs build one::

        qm = quantize(build_encoder("transformer-base", scale=16),
                      QuantConfig(bits=3, overrides={"ffn.*": {"bits": 4}}))

    Quantization happens in place on the (possibly adapted) model; the
    returned :class:`QuantModel` is the handle for compilation.
    """
    config = _coerce_config(config, kwargs)
    model = _adapt(model)
    named = apply_config(model, config)
    return QuantModel(model, config, named)


# ----------------------------------------------------------------------
# QuantModel / CompiledModel
# ----------------------------------------------------------------------
def _fusion_sites(model: Any, named: Iterable[tuple[str, Any]]) -> dict[str, str]:
    """``{layer_path: activation}`` for layers the model graph follows
    with a fusible activation.

    The fusion planning pass of :meth:`QuantModel.compile`: these are
    the sites where pinning the ``"compiled"`` engine folds the next
    activation into the GEMM epilogue (and the forward pass then skips
    its own activation step).  Recognised today: transformer
    feed-forward first projections (``...ffn.ff1`` -> ReLU) and
    :class:`QuantMLP` hidden layers (``fc.<i>`` -> ReLU, all but the
    last).
    """
    sites: dict[str, str] = {}
    for name, _ in named:
        if name.endswith("ffn.ff1"):
            sites[name] = "relu"
    if isinstance(model, QuantMLP):
        last = len(model.fc) - 1
        for name, _ in named:
            head, _, idx = name.rpartition(".")
            if head == "fc" and idx.isdigit() and int(idx) < last:
                sites[name] = "relu"
    return sites


class QuantModel:
    """A quantized model plus its config: the pre-planning handle."""

    def __init__(
        self,
        model: Any,
        config: QuantConfig,
        layers: Iterable[tuple[str, Any]] | None = None,
    ):
        self.model = model
        self.config = config
        self._layers = tuple(
            layers if layers is not None else named_quant_layers(model)
        )
        if not self._layers:
            raise ValueError("QuantModel holds no quantized layers")
        # Bumped on every compile(); CompiledModels carry the value they
        # were built at, so a superseded handle fails loudly instead of
        # silently serving the newer compilation's pinned engines.
        self._compile_generation = 0

    def named_layers(self) -> tuple[tuple[str, Any], ...]:
        """``(dotted_path, QuantLinear)`` per weight GEMM, walk order."""
        return self._layers

    def layer(self, path: str):
        """Look up one layer by dotted path."""
        for name, layer in self._layers:
            if name == path:
                return layer
        raise KeyError(
            f"no layer {path!r}; known paths: "
            f"{[name for name, _ in self._layers]}"
        )

    def gemm_shapes(self) -> list[tuple[str, int, int]]:
        """``(path, m, n)`` per layer -- the planner's input."""
        return [
            (name, layer.shape[0], layer.shape[1])
            for name, layer in self._layers
        ]

    @property
    def weight_nbytes(self) -> int:
        """Total deployed weight bytes across layers (compiles engines)."""
        return sum(layer.weight_nbytes for _, layer in self._layers)

    def __call__(self, *args, **kwargs):
        """Run the underlying model (per-call auto-dispatch until
        compiled)."""
        return self.model(*args, **kwargs)

    def compile(
        self,
        *,
        batch_hint: int | None = None,
        planner: str | None = None,
        machine: str | None = None,
    ) -> "CompiledModel":
        """Plan every layer in one pass and pin the choices.

        ``batch_hint`` is the expected serving batch (defaults to the
        config's hint, else 1); ``planner="autotune"`` ranks candidates
        by host micro-benchmark instead of the cost model; *machine*
        re-prices on another Table III config.  All plans go through the
        shared plan cache -- a deep stack prices each distinct shape
        once -- and each layer is pinned to its planned backend, so the
        compiled model keeps serving it even if the plan cache is
        cleared afterwards.

        Compiling again re-pins the shared layers; any previously
        returned :class:`CompiledModel` is superseded and refuses to
        serve (quantize a fresh model to hold two compilations live).

        **Fusion planning.**  Layers the model graph follows with a
        fusible activation (:func:`_fusion_sites`) are additionally
        priced with the ``"compiled"`` engine's fused epilogue in the
        candidate pool; where it wins, the layer is pinned with
        ``spec.fuse`` set and the forward pass skips its separate
        activation step.  Fused and unfused execution are bit-identical
        -- but the activation now runs *inside* the layer call, so
        step-by-step hooks observing intermediate tensors may see the
        reordering.
        """
        hint = (
            batch_hint
            if batch_hint is not None
            else (self.config.batch_hint or 1)
        )
        check_positive_int(hint, "batch_hint")
        plans = plan_layers(
            self.gemm_shapes(),
            self.config,
            batch_hint=hint,
            planner=planner,
            machine=machine,
            fusions=_fusion_sites(self.model, self._layers),
        )
        for plan, (_, layer) in zip(plans, self._layers):
            layer.pin_backend(
                plan.backend, batch_hint=hint, fuse=plan.spec.fuse
            )
        if _obs.DRIFT:
            # Drift telemetry: park each pinned plan's predicted cost on
            # the key serving measurements will land on.  plan_backend
            # already records all candidates on plan-cache misses; this
            # covers plans resolved from warm cache lines.
            from repro.obs.drift import record_prediction

            bucket = batch_bucket(hint)
            for plan in plans:
                estimate = layer_cost(plan, batch_hint=hint)
                if estimate is None:
                    continue
                record_prediction(
                    plan.backend,
                    plan.m,
                    plan.n,
                    plan.spec.bits,
                    bucket,
                    estimate.seconds,
                    mu=plan.spec.mu,
                    a_bits=plan.spec.a_bits,
                    machine=plan.spec.machine
                    if isinstance(plan.spec.machine, str)
                    else getattr(plan.spec.machine, "name", "pc"),
                )
        self._compile_generation += 1
        return CompiledModel(self, plans, hint)


def _share_arrays(node: Any, memo: dict, seen: set[int]) -> None:
    """Seed a deepcopy *memo* so every ndarray under *node* is shared.

    Used by :meth:`CompiledModel.clone`: replicas need independent
    mutable bookkeeping (dicts, locks, layer objects) but the read-only
    float parameters -- a vocab-sized embedding table, say -- must not
    be duplicated per worker.
    """
    if id(node) in seen:
        return
    seen.add(id(node))
    if isinstance(node, np.ndarray):
        memo[id(node)] = node
        return
    if isinstance(node, (list, tuple)):
        for item in node:
            _share_arrays(item, memo, seen)
        return
    if isinstance(node, dict):
        for value in node.values():
            _share_arrays(value, memo, seen)
        return
    if _walkable(node):
        for value in vars(node).values():
            _share_arrays(value, memo, seen)


class CompiledModel:
    """A planned, pinned, servable model.

    Produced by :meth:`QuantModel.compile`; every layer is frozen onto
    the backend the one-pass planner chose, so inference never
    re-plans.  ``warmup()`` builds all engines ahead of the first
    request; ``cost_report()`` shows the planner's evidence;
    ``save(path)`` writes the v3 whole-model artifact.

    **Workspace arenas.**  Compilation pre-sizes one
    :class:`~repro.core.workspace.Workspace` per planned batch bucket
    (the plan-cache boundaries the serving batcher coalesces toward);
    every ``__call__`` then serves from the bucket's arena -- layer
    activations, lookup tables and partial sums come from warm buffers
    instead of fresh allocations, and the steady state allocates
    (nearly) nothing.  Outputs handed back to the caller are copied out
    of the arena, so results stay valid across requests.  Results are
    bit-identical with arenas on or off; set ``workspaces_enabled =
    False`` to fall back to allocate-per-call (the pre-arena path, used
    by the steady-state benchmark as its baseline).  One arena serves
    one request at a time: concurrent callers of the *same*
    CompiledModel transparently overflow onto the allocating path --
    serving replicas (:meth:`clone`) each own their arenas, so worker
    threads never contend.
    """

    def __init__(
        self, quant_model: QuantModel, plans: list[LayerPlan], batch_hint: int
    ):
        self._qm = quant_model
        self._plans = tuple(plans)
        self.batch_hint = int(batch_hint)
        self._generation = quant_model._compile_generation
        self.workspaces_enabled = True
        # One arena per planned batch bucket, pre-created for the
        # buckets at or below the compile hint; larger serve batches
        # add theirs on first use.
        self._arenas: dict[int, Workspace] = {
            bucket: Workspace(name=f"bucket{bucket}")
            for bucket in batch_buckets(self.batch_hint)
        }
        self._arena_guard = threading.Lock()
        self._forward_lock = threading.Lock()
        # Long-lived arena backing KV caches (created on first
        # generate(); never reset -- caches release blocks on close).
        self._kv: Workspace | None = None

    def _arena_for(self, batch: int) -> Workspace:
        """The arena serving *batch*-request calls (bucketed like the
        plan cache, created on first use above the compile hint)."""
        bucket = batch_bucket(max(1, int(batch)))
        arena = self._arenas.get(bucket)
        if arena is None:
            with self._arena_guard:
                arena = self._arenas.get(bucket)
                if arena is None:
                    arena = Workspace(name=f"bucket{bucket}")
                    self._arenas[bucket] = arena
        return arena

    def workspace_stats(self) -> dict:
        """Aggregated arena counters (hits/misses/bytes) plus the
        per-bucket breakdown -- the ``/metrics`` workspace section."""
        with self._arena_guard:
            arenas = dict(self._arenas)
        per_bucket = {
            bucket: arena.stats() for bucket, arena in sorted(arenas.items())
        }
        totals = {
            "hits": sum(s["hits"] for s in per_bucket.values()),
            "misses": sum(s["misses"] for s in per_bucket.values()),
            "bytes_resident": sum(
                s["bytes_resident"] for s in per_bucket.values()
            ),
            "buffers": sum(s["buffers"] for s in per_bucket.values()),
        }
        return {**totals, "buckets": per_bucket}

    def _check_active(self) -> None:
        if self._generation != self._qm._compile_generation:
            raise ValueError(
                "this CompiledModel was superseded by a later compile() of "
                "the same QuantModel (its layers were re-pinned); use the "
                "newest handle, or quantize a fresh model per compilation"
            )

    @property
    def model(self) -> Any:
        """The underlying (quantized, pinned) model object."""
        return self._qm.model

    @property
    def config(self) -> QuantConfig:
        """The config the model was quantized under."""
        return self._qm.config

    @property
    def layer_plans(self) -> tuple[LayerPlan, ...]:
        """The full per-layer planning record."""
        return self._plans

    @property
    def plans(self) -> dict[str, str]:
        """``{dotted_path: backend}`` -- the compiled decision table."""
        return {plan.name: plan.backend for plan in self._plans}

    def named_layers(self) -> tuple[tuple[str, Any], ...]:
        """``(dotted_path, QuantLinear)`` pairs, walk order."""
        return self._qm.named_layers()

    def warmup(self, sample: np.ndarray | None = None) -> "CompiledModel":
        """Build every pinned engine now (first-request latency to
        zero).  Returns self for chaining.

        With *sample* -- one request without its batch axis, exactly
        what :meth:`repro.serve.Server.predict` receives -- the model
        additionally runs one forward pass per pre-sized batch-bucket
        arena (the sample tiled to the bucket's batch), so every
        steady-state buffer is allocated up front and the first real
        request already serves allocation-free.
        """
        self._check_active()
        for _, layer in self._qm.named_layers():
            layer.engine_for(self.batch_hint)
        if sample is not None and self.workspaces_enabled:
            arr = np.asarray(sample)
            with self._arena_guard:
                buckets = sorted(self._arenas)
            for bucket in buckets:
                batched = np.broadcast_to(
                    arr[None, ...], (bucket,) + arr.shape
                )
                self(np.ascontiguousarray(batched))
        return self

    def cost_report(self) -> ModelCostReport:
        """Roofline price of each layer's pinned backend at the compile
        batch."""
        return cost_report(self._plans, batch_hint=self.batch_hint)

    @property
    def weight_nbytes(self) -> int:
        """Total deployed weight bytes (builds engines on first use)."""
        return self._qm.weight_nbytes

    def __call__(self, x, *args, **kwargs):
        """Serve: run the underlying model on the pinned engines.

        1-D inputs are auto-promoted to a single-row batch ``(1, k)``
        and the output's unit batch axis is squeezed away, so a
        per-request serving path can hand vectors straight through
        without caller-side reshapes.

        The forward runs inside the batch bucket's workspace arena
        (see the class docstring); arena-owned results are copied out
        before returning, so the caller's array survives the next
        request's arena reset.
        """
        self._check_active()
        arr = np.asarray(x)
        squeeze = arr.ndim == 1
        if squeeze:
            arr = arr[None, :]
        if _obs.TRACING:
            from repro.obs.trace import span

            with span(
                "model.forward",
                batch=int(arr.shape[0]) if arr.ndim else 1,
            ):
                out = self._forward(arr, args, kwargs)
        else:
            out = self._forward(arr, args, kwargs)
        if squeeze:
            out = np.asarray(out)
            return out[0] if out.ndim and out.shape[0] == 1 else out
        return out

    def _forward(self, arr: np.ndarray, args: tuple, kwargs: dict):
        workspace = None
        locked = False
        if self.workspaces_enabled:
            # One arena serves one request at a time; a concurrent call
            # on the same handle (replicas exist for that) just takes
            # the allocating path instead of blocking or corrupting.
            locked = self._forward_lock.acquire(blocking=False)
            if locked:
                workspace = self._arena_for(arr.shape[0] if arr.ndim else 1)
        try:
            if workspace is None:
                return self.model(arr, *args, **kwargs)
            workspace.reset()
            with use_workspace(workspace):
                out = self.model(arr, *args, **kwargs)
            result = np.asarray(out)
            if workspace.owns(result):
                # The model's last layer wrote into the arena: hand the
                # caller a copy that outlives the next reset.
                return result.copy()
            return out
        finally:
            if locked:
                self._forward_lock.release()

    def _kv_workspace(self) -> Workspace:
        """The long-lived KV arena (distinct from the per-request
        arenas, which reset every forward -- a cache must never live on
        one of those)."""
        with self._arena_guard:
            if self._kv is None:
                self._kv = Workspace(name="kv")
            return self._kv

    def generate(
        self,
        prompt,
        max_new_tokens: int,
        *,
        temperature: float = 0.0,
        top_k: int | None = None,
        seed: int = 0,
        eos_id: int | None = None,
    ) -> list[int]:
        """Autoregressively decode *max_new_tokens* tokens after *prompt*.

        The paper's headline workload (Fig. 10): one batched **prefill**
        over the prompt populates per-layer KV caches, then each new
        token is a single ``(n, 1)`` GEMV sweep through the pinned
        engines -- the batch-1 regime BiQGEMM's lookup tables win.
        Every quantized layer is (re-)marked batch-invariant first, so
        the cached decode is bit-identical to running the full causal
        recompute at each length, on every registered engine.

        Parameters
        ----------
        prompt:
            Token ids, ``(prompt_len,)`` or ``(1, prompt_len)``.
        max_new_tokens:
            Decode budget.
        temperature / top_k / seed:
            Sampling controls (see :class:`repro.gen.Sampler`).  The
            default ``temperature=0.0`` is greedy argmax; any positive
            temperature samples from a private RNG stream seeded by
            *seed*, so the same call replays the same tokens.
        eos_id:
            Optional stop token: decoding ends once it is emitted (the
            stop token is included in the returned list).

        Returns the newly generated token ids (prompt not included).
        """
        self._check_active()
        check_positive_int(max_new_tokens, "max_new_tokens")
        model = self.model
        # The encoder stack also exposes init_cache/prefill/step, but at
        # the hidden-state level -- token decode additionally needs the
        # embedding table that maps ids into the stack.
        for attr in ("init_cache", "prefill", "step", "embedding"):
            if getattr(model, attr, None) is None:
                raise TypeError(
                    f"model {type(model).__name__!r} has no incremental "
                    f"decode API (missing {attr}); generate() needs a "
                    "DecoderLM-style model"
                )
        from repro.gen.model import mark_batch_invariant
        from repro.gen.sampler import Sampler

        # quantize()/apply_config() may have swapped layers in since
        # construction; re-marking is idempotent and cheap.
        mark_batch_invariant(model)
        ids = np.asarray(prompt, dtype=np.int64)
        if ids.ndim == 1:
            ids = ids[None, :]
        if ids.ndim != 2 or ids.shape[0] != 1 or not ids.shape[1]:
            raise ValueError(
                f"prompt must be (prompt_len,) or (1, prompt_len) token "
                f"ids, got shape {np.asarray(prompt).shape}"
            )
        sampler = Sampler(temperature=temperature, top_k=top_k, seed=seed)
        kv = self._kv_workspace() if self.workspaces_enabled else None
        caches = model.init_cache(
            workspace=kv, reserve=ids.shape[1] + max_new_tokens
        )
        # The scratch arena (scores, softmax partials) resets per call,
        # exactly like _forward; the caches live on the kv arena above,
        # which a reset never touches.  A concurrent forward holding the
        # lock just means this decode allocates instead.
        locked = self.workspaces_enabled and self._forward_lock.acquire(
            blocking=False
        )
        arena = self._arena_for(1) if locked else None

        def run(label, fn, *args, **meta):
            if arena is not None:
                arena.reset()
            if _obs.TRACING:
                from repro.obs.trace import span

                with span(label, **meta):
                    if arena is None:
                        return fn(*args)
                    with use_workspace(arena):
                        return fn(*args)
            if arena is None:
                return fn(*args)
            with use_workspace(arena):
                return fn(*args)

        out: list[int] = []
        try:
            logits = run("gen.prefill", model.prefill, ids, caches,
                         tokens=int(ids.shape[1]))
            # Sample before the next reset: the logits may be
            # arena-owned, and sample() reduces them to a plain int.
            token = sampler.sample(logits)
            out.append(token)
            while len(out) < max_new_tokens and token != eos_id:
                logits = run("gen.step", model.step, token, caches,
                             position=int(caches[0].length))
                token = sampler.sample(logits)
                out.append(token)
        finally:
            if locked:
                self._forward_lock.release()
            for cache in caches:
                cache.close()
        return out

    def decode_step_many(self, tokens, cache_lists) -> np.ndarray:
        """One continuous-batching decode tick: one new token per
        sequence, coalesced through the pinned engines.

        Returns ``(n, vocab)`` logits; each row is bit-identical to
        stepping that sequence alone (the batch-invariant contract --
        see :meth:`generate`).  Runs inside the batch bucket's scratch
        arena when free; results are copied out before the arena's next
        reset, exactly like ``__call__``.
        """
        self._check_active()
        model = self.model
        if not callable(getattr(model, "step_many", None)):
            raise TypeError(
                f"model {type(model).__name__!r} has no step_many(); "
                "continuous batching needs a DecoderLM-style model"
            )
        locked = self.workspaces_enabled and self._forward_lock.acquire(
            blocking=False
        )
        arena = self._arena_for(len(tokens)) if locked else None
        try:
            if arena is None:
                return model.step_many(tokens, cache_lists)
            arena.reset()
            with use_workspace(arena):
                out = model.step_many(tokens, cache_lists)
            result = np.asarray(out)
            if arena.owns(result):
                return result.copy()
            return out
        finally:
            if locked:
                self._forward_lock.release()

    def clone(self) -> "CompiledModel":
        """An independent serving replica sharing the compiled engines.

        The heavy immutable state -- compiled engines, BCQ solutions,
        biases -- is shared; the model structure and every layer's
        mutable bookkeeping (engine dict, build lock) are copied, so one
        replica per worker thread serves without contending on the
        others.  The replica is its own :class:`QuantModel` /
        :class:`CompiledModel` pair: re-compiling the original never
        supersedes it.
        """
        self._check_active()
        memo: dict[int, Any] = {}
        named_src = self._qm.named_layers()
        for _, layer in named_src:
            memo[id(layer)] = layer.clone_shared()
        # Inference never mutates parameters, so every float array
        # outside the quantized layers (embeddings, norms, biases) is
        # shared too -- replicas copy structure, not memory.
        _share_arrays(self._qm.model, memo, set())
        model = copy.deepcopy(self._qm.model, memo)
        named = [(name, memo[id(layer)]) for name, layer in named_src]
        qm = QuantModel(model, self._qm.config, named)
        replica = CompiledModel(qm, list(self._plans), self.batch_hint)
        # Fresh arenas (never shared -- that is the point of a replica);
        # the enable/disable choice carries over.
        replica.workspaces_enabled = self.workspaces_enabled
        return replica

    def replicate(self, n: int) -> list["CompiledModel"]:
        """*n* warmed serving replicas (see :meth:`clone`).

        Engines are compiled once (``warmup()``) before cloning so every
        replica shares the same built engines rather than racing to
        build its own.
        """
        check_positive_int(n, "n")
        self.warmup()
        return [self.clone() for _ in range(n)]

    def serve(self, name: str = "default", **kwargs) -> Any:
        """Start an in-process :class:`repro.serve.Server` on this model.

        Keyword arguments are :class:`repro.serve.ServeConfig` fields
        (``workers``, ``max_batch``, ``max_latency_ms``, ``max_queue``,
        ...).  The returned server is already started; call
        ``predict(name, x)`` on it, expose it over HTTP with
        ``serve_http()``, and ``stop()`` (or use it as a context
        manager) when done.
        """
        from repro.serve import ServeConfig, Server

        server = Server(config=ServeConfig(**kwargs))
        server.add_model(name, self)
        server.start()
        return server

    def save(self, path) -> None:
        """Write the v3 whole-model artifact (see
        :mod:`repro.api.artifact`)."""
        from repro.api.artifact import save

        save(self, path)
