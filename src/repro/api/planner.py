"""One planning pass over a whole model's GEMM shapes.

Both :meth:`repro.api.QuantModel.compile` and
:func:`repro.nn.model_zoo.model_backend_plan` route through
:func:`plan_layers`, so there is exactly one place where per-layer
specs meet the :mod:`repro.engine.dispatch` planner -- cost-model fixes
and cache behaviour apply everywhere at once.  Plans come from the
process-wide plan cache: a BERT-large pass prices each *distinct*
``(m, n, spec, batch)`` once and every deeper layer is a dict hit.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Mapping, Sequence

from repro._util import check_positive_int
from repro.api.config import QuantConfig
from repro.engine import (
    AUTO_BACKEND,
    QuantSpec,
    lossless_engines,
    plan_backend,
    plan_costs,
)
from repro.hw.costmodel import CostEstimate

__all__ = [
    "LayerPlan",
    "ModelCostReport",
    "cost_report",
    "layer_cost",
    "plan_layers",
]


@dataclass(frozen=True)
class LayerPlan:
    """The planner's decision for one named layer.

    ``backend`` is always concrete; ``spec`` is the per-layer spec the
    decision was planned under (overrides applied, ``backend`` still as
    configured, so ``spec.backend == "auto"`` means the planner chose).
    """

    name: str
    m: int
    n: int
    backend: str
    spec: QuantSpec


def _effective_spec(
    spec: QuantSpec,
    *,
    planner: str | None,
    machine: str | None,
) -> QuantSpec:
    if planner is not None:
        spec = replace(spec, planner=planner)
    if machine is not None:
        spec = replace(spec, machine=machine)
    return spec


def plan_layers(
    shapes: Iterable[tuple[str, int, int]],
    config: QuantConfig,
    *,
    batch_hint: int = 1,
    planner: str | None = None,
    machine: str | None = None,
    fusions: Mapping[str, str] | None = None,
) -> list[LayerPlan]:
    """Plan every ``(name, m, n)`` shape under *config* in one pass.

    Per-layer specs come from :meth:`QuantConfig.spec_for` (globs
    applied), concrete backends pass through, and ``"auto"`` resolves
    via :func:`repro.engine.dispatch.plan_backend` at *batch_hint*.
    *planner* / *machine* override the config for this pass only (the
    ``CompiledModel.compile(planner="autotune")`` path).

    *fusions* maps layer names to the activation that follows them in
    the model graph (:meth:`QuantModel.compile`'s fusion planning
    pass).  An ``"auto"`` layer at a fusion site is priced twice: once
    with the fused ``"compiled"`` engine in the candidate pool and once
    without.  The fused spec sticks only when ``"compiled"`` actually
    wins -- otherwise the decision among the lossless engines is
    unchanged by the extra candidate, so the default plan is reused
    verbatim and no layer regresses from having been considered for
    fusion.
    """
    check_positive_int(batch_hint, "batch_hint")
    fusions = fusions or {}
    plans: list[LayerPlan] = []
    for name, m, n in shapes:
        spec = _effective_spec(
            config.spec_for(name), planner=planner, machine=machine
        )
        if spec.backend == AUTO_BACKEND:
            act = fusions.get(name)
            if act is not None and spec.fuse is None:
                trial = replace(spec, fuse=act)
                backend = plan_backend(
                    m,
                    n,
                    spec=trial,
                    batch_hint=batch_hint,
                    candidates=lossless_engines() + ("compiled",),
                )
                if backend == "compiled":
                    spec = trial
                else:
                    backend = plan_backend(
                        m, n, spec=spec, batch_hint=batch_hint
                    )
            else:
                backend = plan_backend(m, n, spec=spec, batch_hint=batch_hint)
        else:
            backend = spec.backend
        plans.append(
            LayerPlan(name=name, m=int(m), n=int(n), backend=backend, spec=spec)
        )
    return plans


def layer_cost(plan: LayerPlan, *, batch_hint: int = 1) -> CostEstimate | None:
    """Roofline estimate of *plan*'s chosen backend at *batch_hint*.

    ``None`` when the backend opted out of cost modelling.
    """
    try:
        costs = plan_costs(
            plan.m,
            plan.n,
            spec=plan.spec,
            batch_hint=batch_hint,
            candidates=(plan.backend,),
        )
    except ValueError:
        return None
    return costs.get(plan.backend)


@dataclass(frozen=True)
class ModelCostReport:
    """Per-layer planner evidence for one compiled model."""

    batch_hint: int
    rows: tuple[tuple[str, str, int, int, float], ...]
    """``(layer, backend, m, n, predicted seconds)`` per layer."""

    @property
    def total_seconds(self) -> float:
        """Predicted seconds for one forward pass over all GEMMs."""
        return sum(row[4] for row in self.rows)

    def by_backend(self) -> dict[str, int]:
        """Layer count per chosen backend."""
        out: dict[str, int] = {}
        for _, backend, _, _, _ in self.rows:
            out[backend] = out.get(backend, 0) + 1
        return out

    def __str__(self) -> str:
        lines = [
            f"cost report (batch_hint={self.batch_hint}, "
            f"total {self.total_seconds:.3e} s):"
        ]
        for name, backend, m, n, seconds in self.rows:
            lines.append(
                f"  {name:<24} {backend:<10} ({m} x {n})  {seconds:.3e} s"
            )
        return "\n".join(lines)


def cost_report(
    plans: Sequence[LayerPlan], *, batch_hint: int = 1
) -> ModelCostReport:
    """Price every plan's chosen backend; the per-model cost report."""
    rows = []
    for plan in plans:
        est = layer_cost(plan, batch_hint=batch_hint)
        seconds = float(est.seconds) if est is not None else float("nan")
        rows.append((plan.name, plan.backend, plan.m, plan.n, seconds))
    return ModelCostReport(batch_hint=batch_hint, rows=tuple(rows))
