"""Model-level quantize -> compile -> serve API.

The paper's payoff is end to end: whole Transformer encoders and LSTMs
quantized with BCQ and served through the situationally-best kernel in
the small-batch regime.  This package is that pipeline as four verbs::

    from repro.api import QuantConfig, quantize, save, load
    from repro.nn import build_encoder

    cfg = QuantConfig(bits=3, overrides={"ffn.*": {"bits": 4}})
    served = quantize(build_encoder("transformer-base", scale=16), cfg)
    compiled = served.compile(batch_hint=1).warmup()
    save(compiled, "encoder.npz")          # ... later, in the server:
    compiled = load("encoder.npz")         # byte-identical outputs

- :class:`QuantConfig` -- one declarative config: global defaults plus
  glob-keyed per-layer overrides (mixed bit-width in one line);
- :func:`quantize` -- walk any :mod:`repro.nn` model (or layer list, or
  trained MLP) and quantize every projection under its per-layer spec;
- :meth:`QuantModel.compile` -- one planning pass over all layers
  through the shared :mod:`repro.engine.dispatch` plan cache, pinning
  each layer to its planned backend;
- :class:`CompiledModel` -- callable serving handle with ``warmup()``,
  ``cost_report()`` and ``save()``;
- :func:`save` / :func:`load` -- the v3 whole-model artifact (manifest
  + per-layer engine payloads; see :mod:`repro.api.artifact`).
"""

from repro.api.config import QuantConfig
from repro.api.model import (
    CompiledModel,
    QuantMLP,
    QuantModel,
    apply_config,
    named_quant_layers,
    quantize,
)
from repro.api.planner import (
    LayerPlan,
    ModelCostReport,
    cost_report,
    layer_cost,
    plan_layers,
)
from repro.api.artifact import load, register_model_structure, save

__all__ = [
    "CompiledModel",
    "LayerPlan",
    "ModelCostReport",
    "QuantConfig",
    "QuantMLP",
    "QuantModel",
    "apply_config",
    "cost_report",
    "layer_cost",
    "load",
    "named_quant_layers",
    "plan_layers",
    "quantize",
    "register_model_structure",
    "save",
]
