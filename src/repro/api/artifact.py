"""The v3 whole-model artifact: one file that serves.

The paper ships compiled state, not float weights (footnote 3); PR 1
made that true per engine (v1/v2 formats in
:mod:`repro.core.serialize`).  This module scales it to whole models: a
single ``.npz`` holding a JSON **manifest** (the
:class:`~repro.api.QuantConfig`, the model structure, the per-layer
plans) plus each layer's engine payload through its registered
export/restore hooks -- so *any* registered backend round-trips, and a
separate serving process reconstructs a callable
:class:`~repro.api.CompiledModel` with byte-identical outputs.

Model structure is serialized through a small codec registry
(:func:`register_model_structure`): encoders, plain layer lists and the
MLP adapter ship built in, and new model kinds plug in without touching
the format.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Mapping

import numpy as np

from repro.api.config import SPEC_FIELDS, QuantConfig
from repro.api.model import CompiledModel, QuantMLP, QuantModel
from repro.api.planner import LayerPlan
from repro.core.serialize import load_model_artifact, save_model_artifact
from repro.engine import QuantSpec, engine_entry
from repro.nn.linear import QuantLinear

__all__ = [
    "export_parts",
    "load",
    "load_from_parts",
    "load_with_manifest",
    "register_model_structure",
    "save",
]


# ----------------------------------------------------------------------
# structure codecs
# ----------------------------------------------------------------------
DescribeFn = Callable[[Any], "dict | None"]
RebuildFn = Callable[[Mapping[str, Any], Mapping[str, QuantLinear]], Any]


@dataclass(frozen=True)
class _StructureCodec:
    kind: str
    describe: DescribeFn
    rebuild: RebuildFn


_STRUCTURE_CODECS: dict[str, _StructureCodec] = {}


def register_model_structure(
    kind: str, describe: DescribeFn, rebuild: RebuildFn
) -> None:
    """Teach the artifact format a new model topology.

    *describe(model)* returns a JSON-able dict (without the ``kind``
    key) when it recognises *model*, else ``None``; *rebuild(desc,
    layers_by_path)* wires the restored layers back into a callable
    model.  Registered kinds are tried in registration order on save.
    """
    if kind in _STRUCTURE_CODECS:
        raise ValueError(f"model structure {kind!r} is already registered")
    _STRUCTURE_CODECS[kind] = _StructureCodec(kind, describe, rebuild)


def _describe_structure(model: Any) -> dict:
    for codec in _STRUCTURE_CODECS.values():
        desc = codec.describe(model)
        if desc is not None:
            return {"kind": codec.kind, **desc}
    raise TypeError(
        f"model structure {type(model).__name__} is not registered for "
        f"whole-model serialization; known kinds: "
        f"{sorted(_STRUCTURE_CODECS)} (extend via "
        "repro.api.register_model_structure)"
    )


def _rebuild_structure(
    desc: Mapping[str, Any], layers_by_path: Mapping[str, QuantLinear]
) -> Any:
    kind = desc.get("kind")
    codec = _STRUCTURE_CODECS.get(kind)
    if codec is None:
        raise ValueError(
            f"artifact names unknown model structure {kind!r}; known "
            f"kinds: {sorted(_STRUCTURE_CODECS)}"
        )
    return codec.rebuild(desc, layers_by_path)


# -- built-in codecs ---------------------------------------------------
def _describe_encoder(model: Any):
    from repro.nn.transformer import TransformerEncoder

    if not isinstance(model, TransformerEncoder):
        return None
    cfg = model.config
    return {
        "dim": cfg.dim,
        "heads": cfg.heads,
        "ff_dim": cfg.ff_dim,
        "layers": cfg.layers,
    }


class _ZeroRng:
    """rng stand-in for skeleton builds: no RNG work, cheap zero pages.

    The restored layers replace every skeleton weight immediately, so
    materializing Xavier-random float matrices at load time would waste
    exactly the memory the artifact exists to avoid.
    """

    @staticmethod
    def standard_normal(shape):
        return np.zeros(shape)


def _rebuild_encoder(desc, layers_by_path):
    from repro.api.model import _walk
    from repro.nn.transformer import TransformerConfig, TransformerEncoder

    skeleton = TransformerEncoder(
        TransformerConfig(
            dim=int(desc["dim"]),
            heads=int(desc["heads"]),
            ff_dim=int(desc["ff_dim"]),
            layers=int(desc["layers"]),
        ),
        _ZeroRng(),
        spec=None,
    )
    remaining = dict(layers_by_path)

    def visit(path: str, layer: Any):
        try:
            return remaining.pop(path)
        except KeyError:
            raise ValueError(
                f"artifact carries no payload for encoder layer {path!r}"
            ) from None

    _walk(skeleton, "", visit, set())
    if remaining:
        raise ValueError(
            f"artifact payloads {sorted(remaining)} match no layer of the "
            "declared encoder structure"
        )
    return skeleton


def _describe_layer_list(model: Any):
    if isinstance(model, list):
        return {"size": len(model)}
    return None


def _rebuild_layer_list(desc, layers_by_path):
    size = int(desc["size"])
    expected = [str(i) for i in range(size)]
    if sorted(layers_by_path) != sorted(expected):
        raise ValueError(
            f"layer-list artifact expects paths {expected}, got "
            f"{sorted(layers_by_path)}"
        )
    return [layers_by_path[p] for p in expected]


def _describe_mlp(model: Any):
    if isinstance(model, QuantMLP):
        return {"size": len(model.fc)}
    return None


def _rebuild_mlp(desc, layers_by_path):
    size = int(desc["size"])
    expected = [f"fc.{i}" for i in range(size)]
    if sorted(layers_by_path) != sorted(expected):
        raise ValueError(
            f"mlp artifact expects paths {expected}, got "
            f"{sorted(layers_by_path)}"
        )
    return QuantMLP([layers_by_path[p] for p in expected])


def _describe_decoder_lm(model: Any):
    # The gen subsystem is optional at save time: if its module was
    # never imported, the model cannot be a DecoderLM, and importing it
    # here just to find that out would be pure overhead.
    gen_model = sys.modules.get("repro.gen.model")
    if gen_model is None or not isinstance(model, gen_model.DecoderLM):
        return None
    if model.seed is None:
        raise ValueError(
            "this DecoderLM was built from an explicit rng; its float "
            "state (embedding table, head init) is not reproducible from "
            "a recorded seed, so it cannot ship as a whole-model "
            "artifact -- construct with seed= instead"
        )
    cfg = model.config
    return {
        "dim": cfg.dim,
        "heads": cfg.heads,
        "ff_dim": cfg.ff_dim,
        "layers": cfg.layers,
        "vocab_size": model.vocab_size,
        "seed": model.seed,
    }


def _rebuild_decoder_lm(desc, layers_by_path):
    from repro.api.model import _walk
    from repro.gen.model import DecoderLM, mark_batch_invariant
    from repro.nn.transformer import TransformerConfig

    # A real seeded rebuild (not _ZeroRng): the embedding table is part
    # of the model's float state and is *regenerated* bit-exactly from
    # the recorded seed -- the artifact ships engine payloads only.
    model = DecoderLM(
        TransformerConfig(
            dim=int(desc["dim"]),
            heads=int(desc["heads"]),
            ff_dim=int(desc["ff_dim"]),
            layers=int(desc["layers"]),
        ),
        int(desc["vocab_size"]),
        seed=int(desc["seed"]),
    )
    remaining = dict(layers_by_path)

    def visit(path: str, layer: Any):
        try:
            return remaining.pop(path)
        except KeyError:
            raise ValueError(
                f"artifact carries no payload for decoder layer {path!r}"
            ) from None

    _walk(model, "", visit, set())
    if remaining:
        raise ValueError(
            f"artifact payloads {sorted(remaining)} match no layer of the "
            "declared decoder structure"
        )
    # The walk swapped fresh QuantLinears in; restore the decode
    # bit-identity contract on them.
    mark_batch_invariant(model)
    return model


register_model_structure(
    "transformer_encoder", _describe_encoder, _rebuild_encoder
)
register_model_structure(
    "decoder_lm", _describe_decoder_lm, _rebuild_decoder_lm
)
register_model_structure("layer_list", _describe_layer_list, _rebuild_layer_list)
register_model_structure("mlp", _describe_mlp, _rebuild_mlp)


# ----------------------------------------------------------------------
# spec <-> json
# ----------------------------------------------------------------------
def _spec_to_dict(spec: QuantSpec) -> dict:
    return {name: getattr(spec, name) for name in SPEC_FIELDS}


def _spec_from_dict(data: Mapping[str, Any]) -> QuantSpec:
    unknown = sorted(set(data) - set(SPEC_FIELDS))
    if unknown:
        raise ValueError(
            f"corrupted model manifest: unknown spec field(s) {unknown}"
        )
    return QuantSpec(**data)


# ----------------------------------------------------------------------
# save / load
# ----------------------------------------------------------------------
def export_parts(
    model: "CompiledModel | QuantModel",
) -> tuple[dict, dict[str, np.ndarray]]:
    """Serialize *model* to its ``(manifest, arrays)`` parts in memory.

    The same content :func:`save` writes to disk, without the file: the
    JSON-able manifest plus each layer's engine payload arrays.  This
    is what multi-process serving packs into shared memory
    (:mod:`repro.serve.cluster`) so N worker processes map one copy of
    the compiled model; :func:`load_from_parts` is the inverse.
    """
    from repro import __version__

    if isinstance(model, QuantModel):
        model = model.compile()
    if not isinstance(model, CompiledModel):
        raise TypeError(
            f"save expects a CompiledModel or QuantModel, got "
            f"{type(model).__name__}"
        )
    model._check_active()  # a superseded handle must not ship stale plans
    structure = _describe_structure(model.model)
    arrays: dict[str, np.ndarray] = {}
    entries: list[dict] = []
    for i, ((layer_path, layer), plan) in enumerate(
        zip(model.named_layers(), model.layer_plans)
    ):
        backend = layer.spec.backend
        entry = engine_entry(backend)
        if entry.export is None:
            raise TypeError(
                f"backend {backend!r} (layer {layer_path!r}) does not "
                "support serialization"
            )
        engine = layer.engine_for(model.batch_hint)
        for key, value in entry.export(engine).items():
            arrays[f"layer{i}.{key}"] = np.asarray(value)
        if layer.bias is not None:
            arrays[f"layer{i}.__bias__"] = layer.bias
        entry_dict = {
            "index": i,
            "path": layer_path,
            "backend": backend,
            "m": layer.shape[0],
            "n": layer.shape[1],
            "planned_backend": plan.backend,
            "spec": _spec_to_dict(layer.spec),
            "has_bias": layer.bias is not None,
        }
        specialization = getattr(engine, "specialization", None)
        if specialization is not None:
            # Engines that specialize per (batch, dtype) -- "compiled"
            # -- persist their trace plan, so load() rehydrates the
            # kernels warmup() built instead of re-planning them.
            plan_dict = specialization()
            if plan_dict.get("batches"):
                entry_dict["specialization"] = plan_dict
        entries.append(entry_dict)
    manifest = {
        "repro_version": __version__,
        "config": model.config.to_dict(),
        "structure": structure,
        "batch_hint": model.batch_hint,
        "layers": entries,
    }
    return manifest, arrays


def save(model: "CompiledModel | QuantModel", path: str | Path) -> None:
    """Write *model* as a version-3 whole-model artifact.

    A :class:`~repro.api.QuantModel` is compiled first (at its config's
    batch hint).  Each layer ships its engine's registered export
    payload -- never float weights -- plus its bias and pinned spec, so
    :func:`load` reconstructs a servable model with byte-identical
    outputs in any process where the backends are registered.
    """
    manifest, arrays = export_parts(model)
    save_model_artifact(path, manifest=manifest, arrays=arrays)


def load(path: str | Path) -> CompiledModel:
    """Reconstruct a servable :class:`~repro.api.CompiledModel`.

    Inverse of :func:`save`: validates the manifest, restores each
    layer's engine through its backend's registry hook, rebuilds the
    declared model structure around them, and returns a compiled model
    whose plans are exactly the saved ones (no re-planning -- the
    artifact *is* the plan).  Restored layers serve their compiled
    backend; truncated or tampered files fail loudly.
    """
    return load_with_manifest(path)[0]


def load_with_manifest(path: str | Path) -> tuple[CompiledModel, dict]:
    """:func:`load` plus the raw JSON manifest it decoded.

    For callers that also want the artifact's provenance/metadata (the
    serving :class:`repro.serve.ModelStore`) without opening and
    validating the file a second time.
    """
    manifest, arrays = load_model_artifact(path)
    return load_from_parts(manifest, arrays)


def load_from_parts(
    manifest: dict, arrays: dict[str, np.ndarray]
) -> tuple[CompiledModel, dict]:
    """Rehydrate a model from already-decoded ``(manifest, arrays)``.

    Inverse of :func:`export_parts`; the file-less half of
    :func:`load_with_manifest`.  The arrays may be read-only views into
    a shared-memory segment -- engines must not mutate their restored
    payloads, and every backend's ``restore`` hook honours that.
    """
    config = QuantConfig.from_dict(manifest["config"])
    layers_by_path: dict[str, QuantLinear] = {}
    plans: list[LayerPlan] = []
    named: list[tuple[str, QuantLinear]] = []
    for i, entry_data in enumerate(manifest["layers"]):
        backend = entry_data["backend"]
        entry = engine_entry(backend)
        if entry.restore is None:
            raise ValueError(
                f"backend {backend!r} does not support deserialization"
            )
        prefix = f"layer{i}."
        state = {
            name[len(prefix):]: value
            for name, value in arrays.items()
            if name.startswith(prefix)
        }
        bias = state.pop("__bias__", None)
        if not state:
            raise ValueError(
                f"corrupted model artifact: no payload for layer "
                f"{entry_data['path']!r}"
            )
        spec = _spec_from_dict(entry_data["spec"])
        engine = entry.restore(state)
        if tuple(engine.shape) != (int(entry_data["m"]), int(entry_data["n"])):
            raise ValueError(
                f"corrupted model artifact: layer {entry_data['path']!r} "
                f"payload has shape {tuple(engine.shape)}, manifest says "
                f"({entry_data['m']}, {entry_data['n']})"
            )
        specialization = entry_data.get("specialization")
        if specialization is not None:
            prebuild = getattr(engine, "prebuild", None)
            if prebuild is not None:
                prebuild(specialization)
        layer = QuantLinear.from_engine(engine, spec=spec, bias=bias)
        layers_by_path[entry_data["path"]] = layer
        named.append((entry_data["path"], layer))
        plans.append(
            LayerPlan(
                name=entry_data["path"],
                m=int(entry_data["m"]),
                n=int(entry_data["n"]),
                backend=entry_data.get("planned_backend", backend),
                spec=spec,
            )
        )
    model = _rebuild_structure(manifest["structure"], layers_by_path)
    qm = QuantModel(model, config, named)
    return CompiledModel(qm, plans, int(manifest["batch_hint"])), manifest
