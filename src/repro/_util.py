"""Shared validation and small numeric helpers.

Internal module: everything here is private to the package. The helpers
centralise argument checking so kernels can fail fast with uniform,
actionable error messages instead of deep numpy broadcasting errors.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "as_2d_float",
    "check_binary",
    "check_matmul_out",
    "check_positive_int",
    "ceil_div",
    "pad_axis",
]


def check_matmul_out(
    out: np.ndarray,
    m: int,
    batch: int,
    dtype,
    x: np.ndarray,
    vector_in: bool,
) -> np.ndarray:
    """Validate a ``matmul_into`` destination; returns its 2-D view.

    The shared contract of every out-capable engine: exact ``(m,
    batch)`` shape (``(m,)`` accepted for vector input), exact compute
    dtype, writable, and no (possible) aliasing with the input -- the
    engines read *x* while accumulating into *out*.
    """
    if not isinstance(out, np.ndarray):
        raise TypeError(f"out must be an ndarray, got {type(out).__name__}")
    if vector_in and out.shape == (m,):
        out2 = out[:, None]
    elif out.shape == (m, batch):
        out2 = out
    else:
        raise ValueError(
            f"out must have shape ({m}, {batch})"
            f"{f' or ({m},)' if vector_in else ''}, got {out.shape}"
        )
    if out.dtype != dtype:
        raise ValueError(
            f"out dtype {out.dtype} != computation dtype {dtype}"
        )
    if not out.flags.writeable:
        raise ValueError("out must be writeable")
    if np.may_share_memory(out, x):
        raise ValueError(
            "out must not alias x: the kernel accumulates into out "
            "while reading x"
        )
    return out2


def as_2d_float(a: np.ndarray, name: str, *, dtype=np.float64) -> np.ndarray:
    """Validate that *a* is a 2-D real array and return it as *dtype*.

    Raises ``TypeError``/``ValueError`` with the offending argument name so
    callers get a message pointing at their own parameter.
    """
    arr = np.asarray(a)
    if arr.ndim != 2:
        raise ValueError(f"{name} must be 2-D, got shape {arr.shape}")
    if arr.size and not np.issubdtype(arr.dtype, np.floating) and not np.issubdtype(
        arr.dtype, np.integer
    ):
        raise TypeError(f"{name} must be numeric, got dtype {arr.dtype}")
    return np.ascontiguousarray(arr, dtype=dtype)


def check_binary(b: np.ndarray, name: str) -> np.ndarray:
    """Validate that *b* contains only -1/+1 and return it as ``int8``."""
    arr = np.asarray(b)
    if arr.size and not np.isin(np.unique(arr), (-1, 1)).all():
        bad = np.setdiff1d(np.unique(arr), (-1, 1))[:4]
        raise ValueError(f"{name} must contain only -1/+1, found values {bad}")
    return arr.astype(np.int8, copy=False)


def check_positive_int(value: int, name: str, *, upper: int | None = None) -> int:
    """Validate that *value* is a positive int, optionally bounded above."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value < 1:
        raise ValueError(f"{name} must be >= 1, got {value}")
    if upper is not None and value > upper:
        raise ValueError(f"{name} must be <= {upper}, got {value}")
    return int(value)


def ceil_div(a: int, b: int) -> int:
    """Integer ceiling division for non-negative operands."""
    return -(-a // b)


def pad_axis(a: np.ndarray, multiple: int, axis: int, *, value=0) -> np.ndarray:
    """Zero-style pad *a* along *axis* up to the next multiple of *multiple*.

    Returns *a* unchanged (no copy) when the length already divides evenly.
    """
    length = a.shape[axis]
    target = ceil_div(length, multiple) * multiple
    if target == length:
        return a
    widths: list[tuple[int, int]] = [(0, 0)] * a.ndim
    widths[axis] = (0, target - length)
    return np.pad(a, widths, mode="constant", constant_values=value)
